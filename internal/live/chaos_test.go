package live

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"roads/internal/policy"
	"roads/internal/query"
	"roads/internal/record"
	"roads/internal/transport"
	"roads/internal/wire"
)

// leakCheck snapshots the goroutine count and registers a cleanup that
// polls until the count settles back near it. Register it BEFORE building
// a cluster: cleanups run LIFO, so it fires after the cluster's Stop.
func leakCheck(t *testing.T) {
	t.Helper()
	base := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(15 * time.Second)
		var n int
		for time.Now().Before(deadline) {
			n = runtime.NumGoroutine()
			if n <= base+3 {
				return
			}
			time.Sleep(25 * time.Millisecond)
		}
		t.Errorf("goroutine leak: %d running after cleanup, started with %d", n, base)
	})
}

// startChaosCluster builds a cluster over a Faulty-wrapped Chan transport
// with a fast replica TTL, so injected failures both hit quickly and heal
// quickly. No owners are attached yet — chaos tests place records after
// they have inspected the tree shape.
func startChaosCluster(t *testing.T, n, maxChildren int, seed int64) (*Cluster, *transport.Faulty) {
	t.Helper()
	leakCheck(t)
	f := transport.NewFaulty(transport.NewChan(), seed)
	// Keep background loops from stalling on drop rules: their calls carry
	// no deadline, so a black hole holds them for the full MaxBlackhole.
	f.MaxBlackhole = 5 * time.Millisecond
	cl, err := StartCluster(f, ClusterConfig{
		N:               n,
		Schema:          record.DefaultSchema(2),
		MaxChildren:     maxChildren,
		ReplicaTTLFloor: 300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Stop)
	return cl, f
}

// attachChaosOwners gives every server except skipIdx (use -1 for none)
// recsPer records and waits for convergence. All records match the query
// from matchAllQuery.
func attachChaosOwners(t *testing.T, cl *Cluster, recsPer, skipIdx int) {
	t.Helper()
	total := 0
	for i := range cl.Servers {
		if i == skipIdx {
			continue
		}
		o := policy.NewOwner(fmt.Sprintf("own%d", i), cl.Schema, nil)
		recs := make([]*record.Record, recsPer)
		for j := range recs {
			r := record.New(cl.Schema, fmt.Sprintf("r%d-%d", i, j), o.ID)
			r.SetNum(0, float64(j+1)/float64(recsPer+2))
			r.SetNum(1, 0.5)
			recs[j] = r
		}
		o.SetRecords(recs)
		if err := cl.AttachOwner(i, o); err != nil {
			t.Fatal(err)
		}
		total += recsPer
	}
	if err := cl.WaitConverged(uint64(total), convergeTimeout); err != nil {
		t.Fatal(err)
	}
}

func matchAllQuery() *query.Query {
	return query.New("chaos-q", query.NewRange("a0", 0, 1))
}

// recordIDs turns a result set into a comparable set of owner/id keys.
func recordIDs(recs []*record.Record) map[string]bool {
	ids := make(map[string]bool, len(recs))
	for _, r := range recs {
		ids[r.Owner+"/"+r.ID] = true
	}
	return ids
}

// interiorNonRoot returns a server that has children but is not the root.
func interiorNonRoot(t *testing.T, cl *Cluster) (*Server, int) {
	t.Helper()
	for i, srv := range cl.Servers {
		if !srv.IsRoot() && srv.NumChildren() > 0 {
			return srv, i
		}
	}
	t.Fatal("no interior non-root server; tree too shallow for this test")
	return nil, -1
}

// TestChaosCrashedRedirectTargetFailsOver is the headline robustness
// scenario: an interior server crashes, a resolve started inside the
// child-prune window still redirects to it, and the client must route
// around the corpse via the redirect's alternates — ending with the exact
// record set a healthy cluster returns, since the victim held no records
// of its own.
func TestChaosCrashedRedirectTargetFailsOver(t *testing.T) {
	cl, _ := startChaosCluster(t, 7, 2, 71)
	victim, victimIdx := interiorNonRoot(t, cl)
	attachChaosOwners(t, cl, 5, victimIdx)
	root := cl.Root()
	if root == nil {
		t.Fatal("no root")
	}
	client := NewClient(cl.Tr, "t")
	q := matchAllQuery()

	baseline, bstats, err := client.Resolve(root.Addr(), q)
	if err != nil {
		t.Fatal(err)
	}
	if bstats.Failed != 0 || bstats.FailedOver != 0 {
		t.Fatalf("healthy baseline saw failures: %+v", bstats)
	}
	if len(baseline) != 6*5 {
		t.Fatalf("baseline returned %d records; want 30", len(baseline))
	}

	// Crash the interior server. Its parent keeps redirecting to it for the
	// whole heartbeat-miss window, so an immediate resolve hits the corpse.
	victim.Kill()
	recs, stats, err := client.Resolve(root.Addr(), q)
	if err != nil {
		t.Fatalf("resolve with crashed redirect target: %v (stats %+v)", err, stats)
	}
	if stats.FailedOver == 0 {
		t.Fatalf("client never failed over to alternates: %+v", stats)
	}
	if stats.Retried == 0 {
		t.Fatalf("dead contact was not retried before failover: %+v", stats)
	}
	if stats.Failed == 0 || len(stats.Errors) != stats.Failed {
		t.Fatalf("failed-contact accounting off: %+v", stats)
	}
	want, got := recordIDs(baseline), recordIDs(recs)
	for id := range want {
		if !got[id] {
			t.Fatalf("record %s lost after failover (got %d of %d)", id, len(got), len(want))
		}
	}
	if len(got) != len(want) {
		t.Fatalf("failover returned %d records; baseline had %d", len(got), len(want))
	}
	// The alternates cover the victim's whole branch, so the coverage
	// estimate must not report the subtree as missing.
	if stats.Coverage < 0.99 {
		t.Fatalf("coverage %.3f after full failover; want ~1", stats.Coverage)
	}
}

// TestChaosOneWayPartition drops parent→child traffic only: the child's
// heartbeats still flow up, so the hierarchy holds, but the replica pushes
// the child depends on vanish and its overlay replicas age out. Queries
// from the root must stay complete throughout — routing is client-driven
// and unaffected by the partitioned pair.
func TestChaosOneWayPartition(t *testing.T) {
	cl, f := startChaosCluster(t, 7, 2, 72)
	child, _ := interiorNonRoot(t, cl)
	attachChaosOwners(t, cl, 4, -1)
	root := cl.Root()
	if root == nil {
		t.Fatal("no root")
	}
	if child.NumReplicas() == 0 {
		t.Fatalf("%s holds no replicas before the partition", child.ID())
	}
	rootChildren := root.NumChildren()

	f.SetRules(transport.Partition(root.ID(), child.Addr()))

	// The child's replicas are soft state fed only by the (now severed)
	// parent pushes; they must age out within the replica TTL.
	deadline := time.Now().Add(30 * time.Second)
	for child.NumReplicas() > 0 && time.Now().Before(deadline) {
		time.Sleep(25 * time.Millisecond)
	}
	if n := child.NumReplicas(); n > 0 {
		t.Fatalf("%s still holds %d replicas long after the partition", child.ID(), n)
	}
	if dropped, _, _ := f.Injected(); dropped == 0 {
		t.Fatal("partition rule never fired")
	}

	// One-way means the reverse direction kept the hierarchy alive.
	if pid := child.ParentID(); pid != root.ID() {
		t.Fatalf("child reattached to %q; the partition should not break child→parent traffic", pid)
	}
	if n := root.NumChildren(); n != rootChildren {
		t.Fatalf("root went from %d to %d children; child heartbeats should have kept it", rootChildren, n)
	}

	// Resolution from the root is unaffected: redirect traffic comes from
	// the client, not the partitioned parent.
	client := NewClient(cl.Tr, "t")
	recs, stats, err := client.Resolve(root.Addr(), matchAllQuery())
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 7*4 {
		t.Fatalf("resolve during partition returned %d records; want 28 (stats %+v)", len(recs), stats)
	}

	// Heal the partition: pushes resume and the replicas grow back.
	f.ClearRules()
	deadline = time.Now().Add(30 * time.Second)
	for child.NumReplicas() == 0 && time.Now().Before(deadline) {
		time.Sleep(25 * time.Millisecond)
	}
	if child.NumReplicas() == 0 {
		t.Fatal("replicas never recovered after the partition healed")
	}
}

// TestChaosDelayedRepliesStraddleDeadline injects one delay bigger than
// the per-contact timeout and one smaller: the slow server times out (a
// counted, partial failure — not a resolve error), the merely-laggy one
// still contributes, and Coverage reports the hole.
func TestChaosDelayedRepliesStraddleDeadline(t *testing.T) {
	cl, f := startChaosCluster(t, 7, 2, 73)
	attachChaosOwners(t, cl, 4, -1)
	root := cl.Root()
	var leafSlow, leafLaggy *Server
	for _, srv := range cl.Servers {
		if srv.IsRoot() || srv.NumChildren() > 0 {
			continue
		}
		if leafSlow == nil {
			leafSlow = srv
		} else if leafLaggy == nil {
			leafLaggy = srv
		}
	}
	if leafSlow == nil || leafLaggy == nil {
		t.Fatal("need two leaves")
	}

	// Scope the rules to client queries so server maintenance traffic —
	// heartbeats, summary reports, replica pushes — keeps its timing.
	f.SetRules(
		transport.FaultRule{From: "t", To: leafSlow.Addr(), Kind: wire.KindQuery,
			Action: transport.FaultDelay, Delay: 2 * time.Second},
		transport.FaultRule{From: "t", To: leafLaggy.Addr(), Kind: wire.KindQuery,
			Action: transport.FaultDelay, Delay: 30 * time.Millisecond},
	)

	client := NewClient(cl.Tr, "t")
	client.Timeout = 300 * time.Millisecond
	client.Retries = 0 // the retry would just time out again
	recs, stats, err := client.Resolve(root.Addr(), matchAllQuery())
	if err != nil {
		t.Fatalf("partial answers must not be resolve errors: %v", err)
	}
	if stats.Failed != 1 {
		t.Fatalf("exactly the slow leaf should fail: %+v", stats)
	}
	got := recordIDs(recs)
	if len(recs) != 6*4 {
		t.Fatalf("got %d records; want 24 (all but the slow leaf's)", len(recs))
	}
	for id := range got {
		if leafSlowOwns(leafSlow, cl, id) {
			t.Fatalf("record %s from the timed-out leaf should be missing", id)
		}
	}
	if stats.Coverage >= 1 {
		t.Fatalf("coverage %.3f claims completeness despite a lost leaf", stats.Coverage)
	}
	if _, delayed, _ := f.Injected(); delayed < 2 {
		t.Fatalf("delay rules fired %d times; want both", delayed)
	}
}

// leafSlowOwns reports whether the record key belongs to the given
// server's owner (owners are named own<index>).
func leafSlowOwns(srv *Server, cl *Cluster, key string) bool {
	for i, s := range cl.Servers {
		if s == srv {
			prefix := fmt.Sprintf("own%d/", i)
			return len(key) > len(prefix) && key[:len(prefix)] == prefix
		}
	}
	return false
}

// TestChaosHungPeerBoundedByDeadline black-holes client queries to one
// leaf with a very long blackhole: only the caller's deadline can release
// the contact, so a prompt return proves cancellation reaches the
// transport.
func TestChaosHungPeerBoundedByDeadline(t *testing.T) {
	cl, f := startChaosCluster(t, 7, 2, 74)
	attachChaosOwners(t, cl, 3, -1)
	root := cl.Root()
	var leaf *Server
	for _, srv := range cl.Servers {
		if !srv.IsRoot() && srv.NumChildren() == 0 {
			leaf = srv
			break
		}
	}
	if leaf == nil {
		t.Fatal("no leaf")
	}
	// The blackhole far exceeds any test timeout; only ctx can end it.
	f.MaxBlackhole = 5 * time.Minute
	f.SetRules(transport.FaultRule{From: "t", To: leaf.Addr(), Kind: wire.KindQuery,
		Action: transport.FaultDrop})

	client := NewClient(cl.Tr, "t")
	client.Timeout = 250 * time.Millisecond
	client.Retries = 0
	start := time.Now()
	recs, stats, err := client.Resolve(root.Addr(), matchAllQuery())
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed > 30*time.Second {
		t.Fatalf("resolve took %v against a hung peer; the deadline never propagated", elapsed)
	}
	if stats.Failed != 1 {
		t.Fatalf("the hung leaf should be the one failure: %+v", stats)
	}
	if len(recs) != 6*3 {
		t.Fatalf("got %d records; want 18 (all but the hung leaf's)", len(recs))
	}
	// Clear before cleanup so shutdown traffic is not black-holed.
	f.ClearRules()
}

// TestChaosDeltaTTLKeepalive proves replica soft-state liveness rides on
// version-only refreshes alone: with the anti-entropy cadence parked far
// beyond the test window and zero churn, every push after convergence is a
// version-only TTL renewal — if that path failed to renew, every replica
// would age out within one TTL and coverage would collapse.
func TestChaosDeltaTTLKeepalive(t *testing.T) {
	leakCheck(t)
	cl, err := StartCluster(transport.NewChan(), ClusterConfig{
		N:                5,
		Schema:           record.DefaultSchema(2),
		MaxChildren:      2,
		ReplicaTTLFloor:  1 * time.Second,
		AntiEntropyEvery: 1 << 20, // no full round inside the test window
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Stop)
	attachChaosOwners(t, cl, 3, -1)
	const total = 5 * 3

	// Let the delta handshake settle, then watch coverage across several
	// TTL windows. pruneStaleReplicas runs every 25ms tick, so any replica
	// whose TTL stopped renewing disappears (and dents coverage) for many
	// consecutive polls — the 20ms polling below cannot miss it.
	time.Sleep(500 * time.Millisecond)
	var pushDelta0, suppressed0 uint64
	for _, srv := range cl.Servers {
		pushDelta0 += srv.mx.pushDelta.Load()
		suppressed0 += srv.mx.reportsSuppressed.Load()
	}
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		for _, srv := range cl.Servers {
			if got := srv.CoveredRecords(); got != total {
				t.Fatalf("%s dropped to %d covered records mid-window; version-only refreshes must keep replicas alive", srv.ID(), got)
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	var pushDelta1, suppressed1 uint64
	for _, srv := range cl.Servers {
		pushDelta1 += srv.mx.pushDelta.Load()
		suppressed1 += srv.mx.reportsSuppressed.Load()
	}
	if pushDelta1 == pushDelta0 {
		t.Fatal("no version-only push entries moved during the window; the test exercised nothing")
	}
	if suppressed1 == suppressed0 {
		t.Fatal("no reports were suppressed during the window; the test exercised nothing")
	}
}

// TestChaosVersionMismatchRecovery corrupts a held replica's version on a
// live cluster and checks the NeedFullOrigins path restores full state
// within a few ticks — divergence is self-healing without waiting for the
// anti-entropy cadence.
func TestChaosVersionMismatchRecovery(t *testing.T) {
	cl, _ := startChaosCluster(t, 5, 2, 76)
	attachChaosOwners(t, cl, 3, -1)
	const wrongVersion = 0xdeadbeef

	// Pick any non-root server and corrupt one of its replicas.
	var victim *Server
	for _, srv := range cl.Servers {
		if !srv.IsRoot() && srv.NumReplicas() > 0 {
			victim = srv
			break
		}
	}
	if victim == nil {
		t.Fatal("no non-root server holds replicas")
	}
	victim.mu.Lock()
	var origin string
	for id, r := range victim.replicas {
		if r.version != 0 {
			origin = id
			r.version = wrongVersion
			break
		}
	}
	victim.mu.Unlock()
	if origin == "" {
		t.Fatal("victim holds no versioned replica to corrupt")
	}

	deadline := time.Now().Add(convergeTimeout)
	for time.Now().Before(deadline) {
		if v, _, ok := replicaVersion(victim, origin); ok && v != wrongVersion {
			if err := cl.WaitConverged(5*3, convergeTimeout); err != nil {
				t.Fatal(err)
			}
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("replica %s on %s never recovered from the version mismatch", origin, victim.ID())
}

// TestQueryBudgetShedding drives the server-side half of the deadline
// hierarchy directly: a query arriving with an exhausted budget is shed
// with an error instead of burning owner-policy work, and the shed shows
// up in the server's status counters.
func TestQueryBudgetShedding(t *testing.T) {
	cl, _ := startChaosCluster(t, 3, 3, 75)
	attachChaosOwners(t, cl, 2, -1)
	srv := cl.Servers[0]

	q := matchAllQuery()
	dto := wire.FromQuery(q, true)
	dto.Budget = time.Nanosecond // exhausted on arrival
	rep, err := cl.Tr.Call(srv.Addr(), &wire.Message{Kind: wire.KindQuery, From: "t", Query: dto})
	if err != nil {
		t.Fatal(err)
	}
	if rerr := wire.RemoteError(rep); rerr == nil {
		t.Fatal("over-budget query must be shed with an error")
	}
	client := NewClient(cl.Tr, "t")
	st, err := client.Status(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if st.QueriesShed == 0 {
		t.Fatal("status does not count the shed query")
	}

	// A sane budget sails through.
	dto2 := wire.FromQuery(q, true)
	dto2.Budget = 10 * time.Second
	rep, err = cl.Tr.Call(srv.Addr(), &wire.Message{Kind: wire.KindQuery, From: "t", Query: dto2})
	if err != nil {
		t.Fatal(err)
	}
	if rerr := wire.RemoteError(rep); rerr != nil {
		t.Fatalf("budgeted query rejected: %v", rerr)
	}
}

// TestLoopJitterDeterministic pins the ticker-jitter contract: the factor
// stays within ±10% and the sequence is a pure function of the server ID,
// so two runs of the same deployment phase identically.
func TestLoopJitterDeterministic(t *testing.T) {
	base := 100 * time.Millisecond
	r1, r2 := loopRng("srv007", 0xa99a), loopRng("srv007", 0xa99a)
	other := loopRng("srv008", 0xa99a)
	same, diff := true, false
	for i := 0; i < 64; i++ {
		a, b, c := jittered(base, r1), jittered(base, r2), jittered(base, other)
		if a != b {
			same = false
		}
		if a != c {
			diff = true
		}
		if a < 90*time.Millisecond || a >= 110*time.Millisecond {
			t.Fatalf("jittered(%v) = %v; want within ±10%%", base, a)
		}
	}
	if !same {
		t.Fatal("same ID produced different jitter sequences")
	}
	if !diff {
		t.Fatal("different IDs produced identical jitter sequences; desynchronization lost")
	}
}

// TestReplicaTTLFloorConfig covers the configurable floor: validation
// rejects negatives, zero falls back to the default, and explicit values
// stick.
func TestReplicaTTLFloorConfig(t *testing.T) {
	cfg := DefaultConfig("a", "addr-a", record.DefaultSchema(1))
	if cfg.ReplicaTTLFloor != DefaultReplicaTTLFloor {
		t.Fatalf("default floor = %v; want %v", cfg.ReplicaTTLFloor, DefaultReplicaTTLFloor)
	}
	cfg.ReplicaTTLFloor = -time.Second
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative floor must fail validation")
	}
	cfg.ReplicaTTLFloor = 0
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := cfg.replicaTTLFloor(); got != DefaultReplicaTTLFloor {
		t.Fatalf("zero floor resolves to %v; want default %v", got, DefaultReplicaTTLFloor)
	}
	cfg.ReplicaTTLFloor = 123 * time.Millisecond
	if got := cfg.replicaTTLFloor(); got != 123*time.Millisecond {
		t.Fatalf("explicit floor resolves to %v", got)
	}
}
