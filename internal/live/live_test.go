package live

import (
	"fmt"
	"math/rand"
	"net"
	"testing"
	"time"

	"roads/internal/policy"
	"roads/internal/query"
	"roads/internal/record"
	"roads/internal/transport"
	"roads/internal/workload"
)

// startWorkloadCluster builds a cluster whose server i holds workload node
// i's records through a summary-mode owner.
func startWorkloadCluster(t *testing.T, n, recsPer int, seed int64) (*Cluster, *workload.Workload) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	w := workload.MustGenerate(workload.Config{Nodes: n, RecordsPerNode: recsPer, AttrsPerDist: 2}, rng)
	tr := transport.NewChan()
	cl, err := StartCluster(tr, ClusterConfig{N: n, Schema: w.Schema, MaxChildren: 3})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Stop)
	for i := 0; i < n; i++ {
		o := policy.NewOwner(fmt.Sprintf("owner%d", i), w.Schema, nil)
		o.SetRecords(w.PerNode[i])
		if err := cl.AttachOwner(i, o); err != nil {
			t.Fatal(err)
		}
	}
	if err := cl.WaitConverged(uint64(n*recsPer), convergeTimeout); err != nil {
		t.Fatal(err)
	}
	return cl, w
}

func TestConfigValidate(t *testing.T) {
	schema := record.DefaultSchema(4)
	good := DefaultConfig("a", "addr-a", schema)
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := good
	bad.ID = ""
	if err := bad.Validate(); err == nil {
		t.Fatal("empty ID must fail")
	}
	bad = good
	bad.Schema = nil
	if err := bad.Validate(); err == nil {
		t.Fatal("nil schema must fail")
	}
	bad = good
	bad.MaxChildren = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero MaxChildren must fail")
	}
}

func TestClusterConvergesAndQueries(t *testing.T) {
	cl, w := startWorkloadCluster(t, 8, 30, 1)
	rng := rand.New(rand.NewSource(2))
	client := NewClient(cl.Tr, "tester")

	queries, err := w.GenQueries(5, 3, 0.4, rng)
	if err != nil {
		t.Fatal(err)
	}
	for qi, q := range queries {
		// Start at a random server — the overlay allows any entry point.
		start := cl.Servers[rng.Intn(len(cl.Servers))]
		recs, stats, err := client.Resolve(start.Addr(), q)
		if err != nil {
			t.Fatalf("query %d: %v", qi, err)
		}
		want := 0
		for _, r := range w.AllRecords() {
			if q.MatchRecord(r) {
				want++
			}
		}
		if len(recs) != want {
			t.Fatalf("query %d from %s: got %d records; want %d (contacted %v)",
				qi, start.ID(), len(recs), want, stats.Servers)
		}
		if stats.Contacted == 0 {
			t.Fatal("must contact at least the start server")
		}
	}
}

func TestHierarchyShape(t *testing.T) {
	cl, _ := startWorkloadCluster(t, 8, 10, 3)
	root := cl.Root()
	if root == nil {
		t.Fatal("no root")
	}
	// MaxChildren=3: 8 servers need at least two levels.
	if root.NumChildren() == 0 || root.NumChildren() > 3 {
		t.Fatalf("root has %d children; want 1..3", root.NumChildren())
	}
	// Every non-root server has a root path starting at the root.
	for _, srv := range cl.Servers {
		if srv == root {
			continue
		}
		path := srv.RootPath()
		if len(path) < 2 || path[0] != root.ID() {
			t.Fatalf("server %s root path %v does not start at root %s", srv.ID(), path, root.ID())
		}
	}
}

func TestVoluntarySharingOverWire(t *testing.T) {
	schema := record.DefaultSchema(2)
	tr := transport.NewChan()
	cl, err := StartCluster(tr, ClusterConfig{N: 2, Schema: schema, MaxChildren: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()

	pol := policy.NewPolicy(policy.ExportSummary)
	pol.DefaultView = policy.View{Name: "deny", Filter: func(*record.Record) bool { return false }}
	pol.SetView("friend", policy.View{Name: "allow"})
	o := policy.NewOwner("own", schema, pol)
	r := record.New(schema, "r1", "own")
	r.SetNum(0, 0.5)
	r.SetNum(1, 0.5)
	o.SetRecords([]*record.Record{r})
	if err := cl.AttachOwner(1, o); err != nil {
		t.Fatal(err)
	}
	if err := cl.WaitConverged(1, convergeTimeout); err != nil {
		t.Fatal(err)
	}

	q := query.New("q", query.NewRange("a0", 0, 1))
	stranger := NewClient(tr, "stranger")
	recs, _, err := stranger.Resolve(cl.Servers[0].Addr(), q)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("stranger got %d records; want 0 under deny view", len(recs))
	}
	friend := NewClient(tr, "friend")
	recs, _, err = friend.Resolve(cl.Servers[0].Addr(), q)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("friend got %d records; want 1", len(recs))
	}
}

func TestTrustedExportServedFromStore(t *testing.T) {
	schema := record.DefaultSchema(2)
	tr := transport.NewChan()
	cl, err := StartCluster(tr, ClusterConfig{N: 2, Schema: schema, MaxChildren: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()

	o := policy.NewOwner("own", schema, policy.NewPolicy(policy.ExportRecords))
	r := record.New(schema, "r1", "own")
	r.SetNum(0, 0.7)
	r.SetNum(1, 0.7)
	o.SetRecords([]*record.Record{r})
	if err := cl.AttachOwner(1, o); err != nil {
		t.Fatal(err)
	}
	if err := cl.WaitConverged(1, convergeTimeout); err != nil {
		t.Fatal(err)
	}
	client := NewClient(tr, "any")
	q := query.New("q", query.NewRange("a0", 0.6, 0.8))
	recs, _, err := client.Resolve(cl.Servers[0].Addr(), q)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].ID != "r1" {
		t.Fatalf("got %v; want the trusted record once", recs)
	}
}

func TestLeafDepartureRecovery(t *testing.T) {
	cl, w := startWorkloadCluster(t, 6, 10, 4)
	// Stop a non-root server gracefully.
	var victim *Server
	var victimIdx int
	for i, srv := range cl.Servers {
		if !srv.IsRoot() && srv.NumChildren() == 0 {
			victim, victimIdx = srv, i
			break
		}
	}
	if victim == nil {
		t.Skip("no leaf found")
	}
	victim.Stop()

	// Remaining data (all but the victim's) stays queryable. Wait for the
	// parent to drop the departed child's summary.
	time.Sleep(300 * time.Millisecond)
	client := NewClient(cl.Tr, "t")
	q := query.New("q", query.NewRange("a0", 0, 1))
	if err := q.Bind(w.Schema); err != nil {
		t.Fatal(err)
	}
	root := cl.Root()
	if root == nil {
		t.Fatal("no root after departure")
	}
	recs, _, err := client.Resolve(root.Addr(), q)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for i, nodeRecs := range w.PerNode {
		if i == victimIdx {
			continue
		}
		for _, r := range nodeRecs {
			if q.MatchRecord(r) {
				want++
			}
		}
	}
	if len(recs) < want {
		t.Fatalf("after departure got %d records; want >= %d", len(recs), want)
	}
}

func TestParentFailureRejoin(t *testing.T) {
	cl, _ := startWorkloadCluster(t, 6, 5, 5)
	root := cl.Root()
	// Find an internal (non-root) server with children.
	var internal *Server
	for _, srv := range cl.Servers {
		if srv != root && srv.NumChildren() > 0 {
			internal = srv
			break
		}
	}
	if internal == nil {
		t.Skip("tree too flat for an internal failure test")
	}
	internal.Stop()

	// Orphans must rejoin; eventually every surviving server reaches the
	// root via its root path.
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		ok := true
		for _, srv := range cl.Servers {
			if srv == internal {
				continue
			}
			path := srv.RootPath()
			if len(path) == 0 || path[0] != root.ID() {
				ok = false
				break
			}
			if srv != root && srv.ParentID() == "" {
				ok = false
				break
			}
		}
		if ok {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	for _, srv := range cl.Servers {
		if srv == internal {
			continue
		}
		t.Logf("stuck: %s parent=%q isroot=%v path=%v", srv.ID(), srv.ParentID(), srv.IsRoot(), srv.RootPath())
	}
	t.Fatal("orphans did not rejoin after parent failure")
}

func TestClusterOverTCP(t *testing.T) {
	schema := record.DefaultSchema(2)
	tr := transport.NewTCP()
	ports := make([]string, 3)
	for i := range ports {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		ports[i] = ln.Addr().String()
		ln.Close()
	}
	cl, err := StartCluster(tr, ClusterConfig{
		N:       3,
		Schema:  schema,
		AddrFor: func(i int) string { return ports[i] },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()

	o := policy.NewOwner("own", schema, nil)
	r := record.New(schema, "r1", "own")
	r.SetNum(0, 0.3)
	r.SetNum(1, 0.3)
	o.SetRecords([]*record.Record{r})
	if err := cl.AttachOwner(2, o); err != nil {
		t.Fatal(err)
	}
	if err := cl.WaitConverged(1, convergeTimeout); err != nil {
		t.Fatal(err)
	}
	client := NewClient(tr, "any")
	q := query.New("q", query.NewRange("a0", 0.2, 0.4))
	recs, stats, err := client.Resolve(cl.Servers[0].Addr(), q)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("TCP cluster returned %d records; want 1 (contacted %v)", len(recs), stats.Servers)
	}
}

func TestStartClusterValidation(t *testing.T) {
	tr := transport.NewChan()
	if _, err := StartCluster(tr, ClusterConfig{N: 0, Schema: record.DefaultSchema(1)}); err == nil {
		t.Fatal("zero servers must fail")
	}
	if _, err := StartCluster(tr, ClusterConfig{N: 1}); err == nil {
		t.Fatal("nil schema must fail")
	}
}

func TestServerDoubleStartAndStop(t *testing.T) {
	schema := record.DefaultSchema(1)
	tr := transport.NewChan()
	srv, err := NewServer(DefaultConfig("a", "addr-a", schema), tr)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err == nil {
		t.Fatal("double start must fail")
	}
	srv.Stop()
	srv.Stop() // idempotent
}
