package live

import "time"

// convergeTimeout bounds cluster convergence waits in tests. The race
// detector slows gob encoding and scheduling by an order of magnitude on
// loaded single-CPU hosts, so race builds (timeout_race_test.go) extend it.
var convergeTimeout = 90 * time.Second
