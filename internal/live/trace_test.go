package live

import (
	"io"
	"regexp"
	"sync"
	"testing"
	"time"

	"roads/internal/record"
	"roads/internal/transport"
)

// TestTraceHopPropagation resolves a traced query across a 3-level
// hierarchy and checks the hop log reconstructs the exact server path:
// one start hop at the entry server, redirect hops whose Path is the chain
// that led there, per-hop latency, and the server-side match decisions.
func TestTraceHopPropagation(t *testing.T) {
	leakCheck(t)
	tr := transport.NewChan()
	cl, err := StartCluster(tr, ClusterConfig{
		N: 7, Schema: record.DefaultSchema(2), MaxChildren: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Stop)
	attachChaosOwners(t, cl, 3, -1)
	root := cl.Root()
	if root == nil {
		t.Fatal("no root")
	}

	client := NewClient(tr, "tracer")
	client.Trace = true
	recs, stats, err := client.Resolve(root.Addr(), matchAllQuery())
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 7*3 {
		t.Fatalf("traced resolve returned %d records, want 21", len(recs))
	}
	if !regexp.MustCompile(`^[0-9a-f]{16}$`).MatchString(stats.TraceID) {
		t.Fatalf("trace ID %q is not 16 hex chars", stats.TraceID)
	}
	if len(stats.Hops) != stats.Contacted+stats.Failed {
		t.Fatalf("hop log has %d entries; %d contacted + %d failed", len(stats.Hops), stats.Contacted, stats.Failed)
	}

	starts, maxDepth := 0, 0
	for _, h := range stats.Hops {
		switch h.Kind {
		case "start":
			starts++
			if len(h.Path) != 0 || h.Via != "" {
				t.Fatalf("start hop carries a path: %+v", h)
			}
			if h.ServerID != root.ID() {
				t.Fatalf("start hop answered by %s, want root %s", h.ServerID, root.ID())
			}
		case "redirect":
			if h.Via == "" || len(h.Path) == 0 {
				t.Fatalf("redirect hop missing provenance: %+v", h)
			}
			if h.Path[0] != root.ID() {
				t.Fatalf("redirect path does not start at the root: %v", h.Path)
			}
			if h.Path[len(h.Path)-1] != h.Via {
				t.Fatalf("redirect path %v does not end at via %s", h.Path, h.Via)
			}
		default:
			t.Fatalf("unexpected hop kind %q in a healthy resolve", h.Kind)
		}
		if len(h.Path) > maxDepth {
			maxDepth = len(h.Path)
		}
		if h.Err != "" {
			t.Fatalf("healthy resolve recorded a failed hop: %+v", h)
		}
		if h.Attempts != 1 {
			t.Fatalf("healthy hop burned %d attempts", h.Attempts)
		}
		if h.RTT <= 0 {
			t.Fatalf("hop has no latency: %+v", h)
		}
		if h.Info == nil {
			t.Fatalf("answered hop has no server-side trace: %+v", h)
		}
		if h.Info.ServerID != h.ServerID {
			t.Fatalf("server trace from %s on a hop answered by %s", h.Info.ServerID, h.ServerID)
		}
		if h.Info.LocalRecords != h.Records {
			t.Fatalf("server says %d local matches, reply carried %d", h.Info.LocalRecords, h.Records)
		}
		if got := len(h.Info.MatchedChildren) + len(h.Info.MatchedReplicas); got < h.Redirects {
			t.Fatalf("match decisions (%d) cover fewer targets than the %d redirects issued", got, h.Redirects)
		}
	}
	if starts != 1 {
		t.Fatalf("%d start hops, want exactly 1", starts)
	}
	// 7 servers with degree 2 form at least 3 levels: the deepest contacts
	// must have been reached through a chain of 2+ servers (root >
	// interior > ...).
	if maxDepth < 2 {
		t.Fatalf("deepest redirect path has %d entries, want >= 2 (3-level hierarchy)", maxDepth)
	}

	// Tracing off: no trace ID, no hops, and no trace work on the servers.
	client.Trace = false
	_, stats, err = client.Resolve(root.Addr(), matchAllQuery())
	if err != nil {
		t.Fatal(err)
	}
	if stats.TraceID != "" || len(stats.Hops) != 0 {
		t.Fatalf("untraced resolve produced trace state: %+v", stats)
	}
}

// TestTraceFailoverHop crashes an interior redirect target mid-resolve (the
// chaos failover scenario) with tracing on: the hop log must show the dead
// contact — retries, final error — and the failover hops that stood in for
// it, labelled as such.
func TestTraceFailoverHop(t *testing.T) {
	cl, _ := startChaosCluster(t, 7, 2, 73)
	victim, victimIdx := interiorNonRoot(t, cl)
	attachChaosOwners(t, cl, 5, victimIdx)
	root := cl.Root()
	if root == nil {
		t.Fatal("no root")
	}
	client := NewClient(cl.Tr, "tracer")
	client.Trace = true

	victim.Kill()
	recs, stats, err := client.Resolve(root.Addr(), matchAllQuery())
	if err != nil {
		t.Fatalf("traced resolve with crashed target: %v (stats %+v)", err, stats)
	}
	if len(recs) != 6*5 {
		t.Fatalf("failover resolve returned %d records, want 30", len(recs))
	}
	if stats.FailedOver == 0 {
		t.Fatalf("client never failed over: %+v", stats)
	}

	var dead, failover int
	for _, h := range stats.Hops {
		if h.Err != "" {
			dead++
			if h.Attempts < 2 {
				t.Fatalf("dead hop was not retried before giving up: %+v", h)
			}
		}
		if h.Kind == "failover" {
			failover++
			if h.Err != "" {
				t.Fatalf("failover stand-in also failed: %+v", h)
			}
			if h.Info == nil {
				t.Fatalf("failover hop has no server-side trace: %+v", h)
			}
		}
	}
	if dead == 0 {
		t.Fatalf("hop log shows no failed contact despite FailedOver=%d: %+v", stats.FailedOver, stats.Hops)
	}
	if failover == 0 {
		t.Fatalf("hop log shows no failover hops despite FailedOver=%d: %+v", stats.FailedOver, stats.Hops)
	}
	if len(stats.Hops) != stats.Contacted+stats.Failed {
		t.Fatalf("hop log has %d entries; %d contacted + %d failed", len(stats.Hops), stats.Contacted, stats.Failed)
	}
}

// TestMetricsScrapeDuringQueries hammers a server with queries while
// scraping its registry concurrently — under -race this proves the
// obs wiring keeps the query hot path and the scrape path disjoint.
func TestMetricsScrapeDuringQueries(t *testing.T) {
	leakCheck(t)
	tr := transport.NewChan()
	cl, err := StartCluster(tr, ClusterConfig{
		N: 3, Schema: record.DefaultSchema(2), MaxChildren: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Stop)
	attachChaosOwners(t, cl, 2, -1)
	root := cl.Root()
	if root == nil {
		t.Fatal("no root")
	}

	stop := make(chan struct{})
	var scrapers sync.WaitGroup
	for _, srv := range cl.Servers {
		reg := srv.mx.reg
		scrapers.Add(1)
		go func() {
			defer scrapers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if err := reg.WritePrometheus(io.Discard); err != nil {
					t.Error(err)
					return
				}
				_ = reg.Snapshot()
				time.Sleep(time.Millisecond)
			}
		}()
	}

	const resolvers = 4
	const perResolver = 25
	var wg sync.WaitGroup
	wg.Add(resolvers)
	for i := 0; i < resolvers; i++ {
		go func(i int) {
			defer wg.Done()
			client := NewClient(tr, "hammer")
			client.Trace = i%2 == 0 // mix traced and untraced load
			for j := 0; j < perResolver; j++ {
				if _, _, err := client.Resolve(root.Addr(), matchAllQuery()); err != nil {
					t.Errorf("resolve: %v", err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(stop)
	scrapers.Wait()

	if got := root.mx.queries.Load(); got < resolvers*perResolver {
		t.Fatalf("root served %d queries, want at least %d", got, resolvers*perResolver)
	}
	if root.mx.evalLatency.Snapshot().Total() != root.mx.queries.Load() {
		t.Fatalf("eval histogram (%d) and query counter (%d) disagree",
			root.mx.evalLatency.Snapshot().Total(), root.mx.queries.Load())
	}
}
