package live

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"roads/internal/obs"
	"roads/internal/policy"
	"roads/internal/record"
	"roads/internal/store"
	"roads/internal/summary"
	"roads/internal/transport"
	"roads/internal/wire"
)

// Config configures one live server.
type Config struct {
	ID   string
	Addr string
	// Schema is the federation-wide record schema.
	Schema *record.Schema
	// Summary configures summary construction.
	Summary summary.Config
	// MaxChildren caps the hierarchy degree.
	MaxChildren int
	// JoinMaxHops caps how many servers one Join descent may visit. Zero
	// (the default) derives the cap from the discovered frontier: the
	// budget grows as the descent uncovers more of the topology, so joins
	// into arbitrarily deep or wide hierarchies never spuriously exhaust
	// it while genuine redirect cycles still terminate. Set a positive
	// value to bound join cost explicitly (e.g. latency-sensitive rejoin
	// paths that would rather fail fast than walk a thousand servers).
	JoinMaxHops int
	// AggregateEvery is the summary refresh period (t_s). Small values
	// make tests fast; production would use minutes.
	AggregateEvery time.Duration
	// HeartbeatEvery is the parent/child liveness period.
	HeartbeatEvery time.Duration
	// HeartbeatMiss is how many missed periods mark a peer dead.
	HeartbeatMiss int
	// ReplicaTTLFloor is the minimum overlay-replica TTL regardless of how
	// fast the ticks run: a full push round must always fit inside the TTL
	// even when encoding runs far slower than the tick (loaded hosts, race
	// detector), or replicas flap and coverage never settles. Zero uses
	// DefaultReplicaTTLFloor; fast-tick tests may lower it, slow
	// production deployments raise it.
	ReplicaTTLFloor time.Duration
	// DisableReplicaBatch falls back to one KindReplicaPush call per
	// replica per child instead of one KindReplicaBatch per child — the
	// pre-batching wire behaviour, kept for benchmarks and for driving
	// peers that predate KindReplicaBatch. Batching is also what carries
	// the delta handshake, so disabling it forces full per-push calls.
	DisableReplicaBatch bool
	// DisableDeltaDissemination turns off the change-driven pipeline
	// end to end: summaries rebuild from scratch every tick, reports
	// always carry the full branch summary, replica pushes always carry
	// full state, and no wire-v3 field (Version, AckInfo, the new Status
	// counters) is ever emitted. A disabled server is byte-equivalent to
	// a pre-v3 peer, which is both the measurable full-rebuild/full-push
	// baseline and the mixed-version interop stand-in.
	DisableDeltaDissemination bool
	// AntiEntropyEvery is the anti-entropy cadence in aggregation ticks:
	// every Nth tick sends full reports and full replica pushes even to
	// peers that confirmed holding the current versions, bounding how
	// long any divergence (lost state, metadata drift a version-only
	// refresh does not carry) can persist. Zero uses
	// DefaultAntiEntropyEvery; ignored when delta dissemination is
	// disabled (every tick is full then).
	AntiEntropyEvery int
	// DisableMembershipEpoch turns off the epoch-fenced membership layer
	// end to end: no message is ever epoch-stamped (so nothing this server
	// sends requires wire v4), no fencing is applied, no split-brain
	// probing runs, and incoming root probes are answered with the generic
	// unhandled-kind error. A disabled server is byte-equivalent to a
	// pre-epoch peer, which is the mixed-version interop stand-in —
	// mirroring DisableDeltaDissemination for wire v3.
	DisableMembershipEpoch bool
	// MergeSeeds are addresses this server probes for foreign roots while
	// it is a root itself (split-brain detection), in addition to the
	// ancestry it remembers from before a partition. Typically the
	// cluster's well-known seed servers.
	MergeSeeds []string
	// MergeProbeEvery is the split-brain probe cadence. Zero derives
	// 4×HeartbeatEvery.
	MergeProbeEvery time.Duration
	// DisableAdaptiveSummaries turns off the feedback-driven resolution
	// loop end to end: no false-positive heat is folded into resolution
	// plans, exported summaries keep the uniform Config.Summary geometry
	// forever, and no wire-v6 field (the Adaptive capability flag, summary
	// Mode/Plan) is ever emitted. A disabled server is byte-equivalent to
	// a wire-v5 peer, which is both the measurable static baseline and
	// the mixed-version interop stand-in — mirroring
	// DisableDeltaDissemination for v3 and DisableMembershipEpoch for v4.
	// Adaptive summaries also require delta dissemination and replica
	// batching (the capability handshake rides on batch acks), so
	// disabling either of those disables this too.
	DisableAdaptiveSummaries bool
	// SummaryByteBudget caps the estimated wire size of the adaptive
	// resolution plan across plannable attributes: the planner spends the
	// budget where false-positive heat concentrates and sheds resolution
	// from the coldest attributes when over. Zero leaves the plan
	// unbounded (every attribute may climb to the ladder ceiling).
	SummaryByteBudget int
	// ReplanEvery is the adaptive replan cadence in aggregation ticks:
	// every Nth refresh folds the accumulated false-positive heat into
	// the planner and installs the resulting geometry. Zero uses
	// DefaultReplanEvery.
	ReplanEvery int
	// LegacyQueryLocking evaluates queries under the server mutex against
	// the live routing maps (the pre-snapshot behaviour) instead of
	// against the lock-free routing snapshot — the measurable baseline
	// the snapshot path is benchmarked against.
	LegacyQueryLocking bool
	// Metrics is the obs registry the server's named series register into
	// (roadsd passes one shared registry per process and serves it at
	// /metrics). Nil gives the server a private registry: series are
	// label-free, so two servers sharing a registry would collide on
	// names — and tests and simulations run many servers per process.
	Metrics *obs.Registry
	// Cost models the store backend.
	Cost store.CostModel
	// StoreShards is the server store's shard count. Records hash to
	// shards by ID; each shard keeps its own lock, indexes and — while
	// delta dissemination is on — an incrementally maintained partial
	// summary, so store churn re-summarizes touched shards instead of
	// rebuilding the whole store's summary. Zero uses store.DefaultShards.
	StoreShards int
	// ResultCacheBytes is the query result cache's LRU byte budget. Zero
	// uses DefaultResultCacheBytes; negative disables the cache. Cached
	// replies are revalidated against the exact version set they were
	// computed from (store epoch, owner generations, child/replica dep
	// hashes), so a hit is always byte-identical to a fresh evaluation.
	ResultCacheBytes int64
	// AdmissionRate is the per-requester admission budget in queries per
	// second. Zero disables admission control entirely. Requesters over
	// budget are shed: wire-v5 requesters get a coarse summary-only
	// answer, older peers the legacy error shed; PriorityHigh is never
	// shed.
	AdmissionRate float64
	// AdmissionBurst is the token-bucket depth (how many queries a
	// requester may burst above the sustained rate). Zero derives
	// 2×AdmissionRate, floored at 1.
	AdmissionBurst int
	// Classifier optionally pins requester identities to priority classes
	// server-side, overriding the priority their queries claim — the
	// serving site keeps final control over scheduling just as owners keep
	// it over answers. Nil trusts the wire priority.
	Classifier *policy.Classifier
}

// DefaultConfig returns test-friendly defaults for the given identity.
func DefaultConfig(id, addr string, schema *record.Schema) Config {
	scfg := summary.DefaultConfig()
	scfg.Buckets = 200
	return Config{
		ID:              id,
		Addr:            addr,
		Schema:          schema,
		Summary:         scfg,
		MaxChildren:     8,
		AggregateEvery:  50 * time.Millisecond,
		HeartbeatEvery:  50 * time.Millisecond,
		HeartbeatMiss:   4,
		ReplicaTTLFloor: DefaultReplicaTTLFloor,
	}
}

// DefaultReplicaTTLFloor is the replica-TTL floor applied when
// Config.ReplicaTTLFloor is zero.
const DefaultReplicaTTLFloor = 5 * time.Second

// DefaultAntiEntropyEvery is the anti-entropy cadence applied when
// Config.AntiEntropyEvery is zero: one full-state round every 16
// aggregation ticks. Version-only refreshes renew replica TTLs several
// times per full round, so soft-state liveness never depends on the
// full-state cadence.
const DefaultAntiEntropyEvery = 16

// DefaultReplanEvery is the adaptive replan cadence applied when
// Config.ReplanEvery is zero: the planner re-evaluates the false-positive
// heat every 4 aggregation ticks — slow enough that heat accumulates into
// a signal, fast enough that a hot attribute refines within a few refresh
// periods.
const DefaultReplanEvery = 4

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.ID == "" || c.Addr == "" {
		return fmt.Errorf("live: ID and Addr are required")
	}
	if c.Schema == nil {
		return fmt.Errorf("live: Schema is required")
	}
	if err := c.Summary.Validate(); err != nil {
		return err
	}
	if c.MaxChildren <= 0 {
		return fmt.Errorf("live: MaxChildren must be positive")
	}
	if c.JoinMaxHops < 0 {
		return fmt.Errorf("live: JoinMaxHops must not be negative")
	}
	if c.AggregateEvery <= 0 || c.HeartbeatEvery <= 0 || c.HeartbeatMiss <= 0 {
		return fmt.Errorf("live: periods and HeartbeatMiss must be positive")
	}
	if c.ReplicaTTLFloor < 0 {
		return fmt.Errorf("live: ReplicaTTLFloor must not be negative")
	}
	if c.AntiEntropyEvery < 0 {
		return fmt.Errorf("live: AntiEntropyEvery must not be negative")
	}
	if c.MergeProbeEvery < 0 {
		return fmt.Errorf("live: MergeProbeEvery must not be negative")
	}
	if c.AdmissionRate < 0 {
		return fmt.Errorf("live: AdmissionRate must not be negative")
	}
	if c.AdmissionBurst < 0 {
		return fmt.Errorf("live: AdmissionBurst must not be negative")
	}
	if c.SummaryByteBudget < 0 {
		return fmt.Errorf("live: SummaryByteBudget must not be negative")
	}
	if c.ReplanEvery < 0 {
		return fmt.Errorf("live: ReplanEvery must not be negative")
	}
	return nil
}

// adaptiveOn reports whether the feedback-driven resolution loop runs.
// Adaptive summaries ride on the delta pipeline (plans are installed by
// the change-driven refresh) and bootstrap capability through replica-batch
// acks, so disabling delta dissemination or batching disables them too.
func (c Config) adaptiveOn() bool {
	return !c.DisableAdaptiveSummaries && !c.DisableDeltaDissemination && !c.DisableReplicaBatch
}

// replanEvery returns the configured replan cadence, defaulted.
func (c Config) replanEvery() uint64 {
	if c.ReplanEvery > 0 {
		return uint64(c.ReplanEvery)
	}
	return DefaultReplanEvery
}

// mergeProbeEvery returns the split-brain probe cadence, defaulted.
func (c Config) mergeProbeEvery() time.Duration {
	if c.MergeProbeEvery > 0 {
		return c.MergeProbeEvery
	}
	return 4 * c.HeartbeatEvery
}

// antiEntropyEvery returns the configured anti-entropy cadence, defaulted.
func (c Config) antiEntropyEvery() uint64 {
	if c.AntiEntropyEvery > 0 {
		return uint64(c.AntiEntropyEvery)
	}
	return DefaultAntiEntropyEvery
}

// replicaTTLFloor returns the configured floor, defaulted.
func (c Config) replicaTTLFloor() time.Duration {
	if c.ReplicaTTLFloor > 0 {
		return c.ReplicaTTLFloor
	}
	return DefaultReplicaTTLFloor
}

// childState tracks one child branch.
type childState struct {
	id, addr    string
	branch      *summary.Summary
	depth       int
	descendants int
	lastSeen    time.Time
	// kids are the child's own children, piggybacked on its summary
	// reports; they become failover Alternates on redirects to the child.
	kids []wire.RedirectInfo
	// version is the branch-summary content version the child stamped on
	// its last full report (0 from pre-v3 children). It versions the
	// sibling pushes built from this branch and gates childEpoch: a full
	// report carrying the same version left the merged branch unchanged.
	version uint64
	// deltaCapable is set once the child attaches AckInfo to a
	// replica-batch ack, proving it understands wire v3; only then may
	// pushes to it be version-stamped or version-only. Reset when the
	// child rejoins or downgrades to unversioned reports.
	deltaCapable bool
	// acked maps origin ID → the branch version this child last
	// confirmed holding, so unchanged replicas ship as version-only TTL
	// refreshes. Entries are dropped when the child asks for full state.
	acked map[string]uint64
	// epoch is the highest membership epoch this child stamped on a
	// relationship message; lower-epoch heartbeats, reports and re-joins
	// from it are fenced. Reset to the join's epoch when it rejoins.
	epoch uint64
	// epochCapable is set once the child stamped any message (batch ack,
	// report, heartbeat, join), proving it decodes wire v4; only then are
	// requests to it epoch-stamped.
	epochCapable bool
	// adaptiveCapable is set once the child attached the Adaptive flag to
	// a replica-batch ack or a summary report, proving it decodes wire v6;
	// only then may pushes to it carry adaptive-geometry or condensed
	// summaries (and the Adaptive flag). Unproven children receive
	// summaries flattened to the uniform base geometry. Reset when the
	// child rejoins.
	adaptiveCapable bool
}

// replicaState is one overlay replica.
type replicaState struct {
	originID, originAddr string
	branch               *summary.Summary
	local                *summary.Summary // ancestors only
	ancestor             bool
	// level is the origin's distance in hierarchy levels (1 = own
	// sibling or parent); scoped queries filter on it.
	level int
	// received is when this replica last refreshed; stale replicas age
	// out (soft state), so crashed origins stop attracting redirects.
	received time.Time
	// fallbacks are the origin's children, carried on the push; they
	// become failover Alternates on redirects to the origin.
	fallbacks []wire.RedirectInfo
	// version is the origin's branch content version carried on the push
	// (0 from pre-v3 senders). A version-only refresh entry renews
	// received only when it matches; forwarding this replica propagates
	// the same version one level down.
	version uint64
}

// ownerCacheEntry is one cached owner export: the summary the owner
// exported at record-set generation gen. While Generation() still returns
// gen the cached summary is current and the export is skipped.
type ownerCacheEntry struct {
	gen uint64
	sum *summary.Summary
}

// Server is one live ROADS server.
type Server struct {
	cfg Config
	tr  transport.Transport

	mu         sync.Mutex
	owners     []*policy.Owner
	store      *store.Store
	parentID   string
	parentAddr string
	// parentMisses / parentReportMisses count consecutive failed parent
	// calls per source loop (heartbeat vs. report). The loops tick
	// independently, so a shared counter reached HeartbeatMiss ~2× faster
	// than configured; failure is declared when either source alone does.
	parentMisses       int
	parentReportMisses int
	// tx is the structural mutation currently in flight (recovery, merge);
	// structural mutations are single-flight, see membership.go.
	tx            txKind
	rootPath      []string
	rootPathAddrs []string
	siblingsOfMe  []wire.RedirectInfo // from heartbeat replies; root election
	children      map[string]*childState
	replicas      map[string]*replicaState
	localSummary  *summary.Summary
	branchSummary *summary.Summary

	// parentEpoch / parentEpochCapable mirror childState.epoch/epochCapable
	// for the upward edge: the highest epoch the parent stamped (replies
	// from a lower one are stale and fenced) and whether it proved it
	// decodes wire v4 (a stamped push or reply), which authorizes stamping
	// our heartbeats and reports. Reset whenever the parent changes.
	parentEpoch        uint64
	parentEpochCapable bool
	// knownServers is the ancestry memory (id → addr of servers seen on
	// our root path, sibling set, or probes) that seeds split-brain
	// probing: after a partition cuts the tree, the pre-partition ancestry
	// survives here. Bounded at knownServerCap.
	knownServers map[string]string
	// pendingMergeAddr is the address of a foreign winning root recorded
	// by a probe (sent or received); the membership loop executes the
	// merge — handlers never make outgoing calls.
	pendingMergeAddr string

	// childEpoch counts child-branch mutations (branch content set,
	// changed, or child removed); refreshSummaries skips the branch
	// re-merge while it matches lastChildEpoch. Guarded by s.mu.
	childEpoch     uint64
	lastChildEpoch uint64

	// Parent-side delta state (guarded by s.mu), reset whenever the
	// parent changes: parentV3 is set once the parent proves it speaks
	// wire v3 (a version-stamped push or an AckInfo reply);
	// parentHaveVersion is the branch version the parent last confirmed
	// holding (reports while it matches go version-only);
	// parentNeedFull forces the next report full after the parent
	// rejected a version-only one.
	parentV3          bool
	parentHaveVersion uint64
	parentNeedFull    bool
	// parentAdaptive is set once the parent flags a replica batch with the
	// Adaptive capability (wire v6), which authorizes sending it
	// adaptive-geometry and condensed branch reports; until then reports
	// are flattened to the uniform base geometry. Guarded by s.mu, reset
	// whenever the parent changes.
	parentAdaptive bool

	// refreshMu serializes refreshSummaries: the incremental-refresh
	// caches below are its private state, and tests drive refreshes
	// concurrently with the aggregation loop.
	refreshMu sync.Mutex
	// storeSummary caches the summary built from the store at storeEpoch;
	// while the epoch matches, the O(records × attributes) rebuild is
	// skipped. Guarded by refreshMu.
	storeSummary *summary.Summary
	storeEpoch   uint64
	haveStore    bool
	haveBranch   bool
	// ownerCache caches each summary-mode owner's export keyed by the
	// owner's record-set generation. Guarded by refreshMu.
	ownerCache map[*policy.Owner]ownerCacheEntry
	// aggRound counts aggregation rounds (shared by refresh, report and
	// push within one tick) for the anti-entropy cadence.
	aggRound atomic.Uint64

	// Adaptive-summary state. fpHeat accumulates false-positive descents
	// per schema attribute (bumped lock-free on the query path; drained by
	// the replan). planner, heat (the drained EWMA) and curCfg (the
	// geometry exports currently build with) are refresh-private state
	// guarded by refreshMu. planDeviation counts attributes currently off
	// their base resolution level, for the gauge. All idle when
	// Config.adaptiveOn() is false — curCfg then stays Config.Summary.
	fpHeat        []atomic.Uint64
	planner       *summary.Planner
	heat          map[string]float64
	curCfg        summary.Config
	planDeviation atomic.Int64
	// flatMu guards the legacy-report flatten cache: the branch summary
	// re-expressed in the uniform base geometry for a pre-v6 parent,
	// keyed by the source branch version so one flatten serves every tick
	// until the branch actually changes. (FlattenTo stamps deterministic
	// versions, so version-only suppression keeps working on the
	// flattened variant.)
	flatMu     sync.Mutex
	flatSrcVer uint64
	flatSum    *summary.Summary

	// epoch is the membership epoch: starts at 1, bumped when a recovery
	// begins, raised to any higher epoch observed on the wire, and never
	// decreased — so the federation converges to the maximum and anything
	// stamped from before the latest recovery is recognizably stale. An
	// atomic so the stamping paths read it lock-free; 0 never appears (a
	// zero on the wire means "not stamped").
	epoch atomic.Uint64

	// snap is the immutable routing snapshot the lock-free read paths
	// (handleQuery, handleStatus, the public accessors) evaluate against.
	// Never nil after NewServer; write paths republish it via
	// publishSnapshotLocked while holding s.mu.
	snap atomic.Pointer[routingSnapshot]

	// resultCache caches complete query replies keyed by normalized
	// predicates and revalidated against exact dependency versions (nil
	// when disabled). admission is the per-requester token-bucket layer
	// (nil when disabled). Both are built in NewServer before the first
	// snapshot publish and never replaced, so the handlers read them
	// without synchronization.
	resultCache *resultCache
	admission   *admission

	// mx holds the operational counters (monotone since startup) as named
	// obs series. The counters are atomics, not mutex-guarded fields: the
	// query hot path bumps them without touching s.mu, and a /metrics
	// scrape reads them without blocking a query.
	mx *serverMetrics
	// summaryFailing tracks the summary-refresh error state so the OK →
	// failing and failing → recovered transitions each log exactly once
	// instead of once per tick.
	summaryFailing atomic.Bool
	// lastRefresh is the unix-nano time of the last successful summary
	// refresh (0 before the first); roads_summary_age_seconds derives
	// from it.
	lastRefresh atomic.Int64
	// refreshBusyNs accumulates wall time spent inside refreshSummaries —
	// the refresh-CPU number the load harness reports against skip rates.
	refreshBusyNs atomic.Int64
	startTime     time.Time

	closer  io.Closer
	stop    chan struct{}
	wg      sync.WaitGroup
	started bool
}

// NewServer creates a server (not yet listening).
func NewServer(cfg Config, tr transport.Transport) (*Server, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	st := store.NewWithOptions(cfg.Schema, cfg.Cost, store.Options{Shards: cfg.StoreShards})
	if !cfg.DisableDeltaDissemination {
		// The delta refresh path exports the store summary as a merge of
		// per-shard partials maintained on write; the disabled baseline
		// keeps the monolithic FromRecords rebuild (see refreshSummaries).
		if err := st.EnableSummaries(cfg.Summary); err != nil {
			return nil, err
		}
	}
	s := &Server{
		cfg:          cfg,
		tr:           tr,
		store:        st,
		children:     make(map[string]*childState),
		replicas:     make(map[string]*replicaState),
		knownServers: make(map[string]string),
		ownerCache:   make(map[*policy.Owner]ownerCacheEntry),
		resultCache:  newResultCache(cfg.ResultCacheBytes),
		admission:    newAdmission(cfg.AdmissionRate, cfg.AdmissionBurst),
		stop:         make(chan struct{}),
		startTime:    time.Now(),
	}
	s.curCfg = cfg.Summary
	if cfg.adaptiveOn() {
		s.planner = summary.NewPlanner(cfg.Summary, cfg.SummaryByteBudget)
		s.heat = make(map[string]float64)
		s.fpHeat = make([]atomic.Uint64, cfg.Schema.NumAttrs())
	}
	s.epoch.Store(1)
	// Publish the empty snapshot so the lock-free paths never see nil —
	// the metric gauges registered next read it too.
	s.mu.Lock()
	s.publishSnapshotLocked()
	s.mu.Unlock()
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	s.mx = newServerMetrics(s, reg)
	return s, nil
}

// ID returns the server's identity.
func (s *Server) ID() string { return s.cfg.ID }

// Addr returns the server's listen address.
func (s *Server) Addr() string { return s.cfg.Addr }

// AttachOwner attaches a resource owner locally. Owners in ExportRecords
// mode have their records copied into the server's store.
func (s *Server) AttachOwner(o *policy.Owner) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.owners = append(s.owners, o)
	if o.Policy.Mode == policy.ExportRecords {
		recs, err := o.ExportRecords()
		if err != nil {
			return err
		}
		s.store.Add(recs...)
	}
	s.publishSnapshotLocked()
	return nil
}

// Start begins listening and runs the background loops. The server starts
// as a root of its own one-node hierarchy; Join attaches it elsewhere.
func (s *Server) Start() error {
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		return fmt.Errorf("live: server %s already started", s.cfg.ID)
	}
	s.started = true
	s.rootPath = []string{s.cfg.ID}
	s.rootPathAddrs = []string{s.cfg.Addr}
	s.publishSnapshotLocked()
	s.mu.Unlock()

	closer, err := s.tr.Listen(s.cfg.Addr, s.handle)
	if err != nil {
		return err
	}
	s.closer = closer

	s.refreshSummaries()

	s.wg.Add(2)
	go s.aggregationLoop()
	go s.heartbeatLoop()
	if s.epochEnabled() {
		s.wg.Add(1)
		go s.membershipLoop()
	}
	return nil
}

// Kill shuts the server down abruptly — no Leave messages, simulating a
// crash. Peers must discover the death through missed heartbeats and
// soft-state expiry. Intended for failure-injection tests and chaos demos.
func (s *Server) Kill() { s.shutdown(false) }

// Stop leaves the hierarchy gracefully and shuts down.
func (s *Server) Stop() { s.shutdown(true) }

// shutdown runs both teardown paths. started is flipped while s.mu is
// still held, so of any number of concurrent Kill/Stop callers exactly one
// reaches close(s.stop) — checking under the lock but closing after
// releasing it let a Kill and a Stop race into a double close.
func (s *Server) shutdown(graceful bool) {
	s.mu.Lock()
	if !s.started {
		s.mu.Unlock()
		return
	}
	s.started = false
	parentAddr := s.parentAddr
	childAddrs := make([]string, 0, len(s.children))
	for _, c := range s.children {
		childAddrs = append(childAddrs, c.addr)
	}
	s.mu.Unlock()

	if graceful {
		leave := &wire.Message{Kind: wire.KindLeave, From: s.cfg.ID, Addr: s.cfg.Addr}
		if parentAddr != "" {
			_, _ = s.tr.Call(parentAddr, leave)
		}
		for _, addr := range childAddrs {
			_, _ = s.tr.Call(addr, leave)
		}
	}

	close(s.stop)
	s.wg.Wait()
	if s.closer != nil {
		_ = s.closer.Close()
	}
}

// Join errors, distinguishable with errors.Is. They separate the two ways
// a descent can end without a parent: the hop budget ran out while
// unexplored branches remained (a topology-vs-Config.JoinMaxHops problem —
// the join might have succeeded with a bigger budget), and the frontier
// genuinely drained (every reachable server refused or was unreachable —
// more budget would not have helped).
var (
	// ErrJoinHopsExhausted reports a Join that hit its hop cap with
	// candidate servers still unexplored.
	ErrJoinHopsExhausted = errors.New("join hop budget exhausted")
	// ErrJoinRefused reports a Join whose every discovered candidate
	// refused the join or was unreachable.
	ErrJoinRefused = errors.New("no server accepted the join")
)

// defaultJoinHopFloor is the minimum derived hop budget when
// Config.JoinMaxHops is zero. The derived budget scales with the
// discovered topology beyond this floor.
const defaultJoinHopFloor = 256

// joinHopBudget returns how many descent hops a Join may burn given how
// many addresses it has discovered so far (visited plus still-queued). An
// explicit Config.JoinMaxHops wins outright; the default budget is twice
// the discovered count (every discovered server may be visited once and
// skipped once as a queued duplicate), floored at defaultJoinHopFloor —
// so the budget grows with the topology the descent uncovers and a
// thousand-server tree of full or refusing branches can be walked end to
// end, while a redirect cycle (stale child lists pointing at each other)
// still terminates instead of spinning forever.
func (s *Server) joinHopBudget(discovered int) int {
	if s.cfg.JoinMaxHops > 0 {
		return s.cfg.JoinMaxHops
	}
	budget := 2 * discovered
	if budget < defaultJoinHopFloor {
		budget = defaultJoinHopFloor
	}
	return budget
}

// Join attaches the server under the hierarchy reachable at seedAddr,
// descending per the paper: query the contact, follow the least-depth
// child branch until someone accepts, backtracking into other branches if
// a descent dead-ends (server gone or all refusing).
func (s *Server) Join(seedAddr string) error {
	return s.join(seedAddr, false)
}

// join runs the Join descent. With stamp set, every join request carries
// the membership epoch: only the merge path sets it, because the target
// root proved it decodes wire v4 by answering probes — a plain rejoin
// must stay unstamped so pre-epoch parents can still accept it.
func (s *Server) join(seedAddr string, stamp bool) error {
	tried := make(map[string]bool)
	frontier := []string{seedAddr}
	var lastErr error
	refused, unreachable := 0, 0
	for hops := 0; len(frontier) > 0; hops++ {
		if budget := s.joinHopBudget(len(tried) + len(frontier)); hops >= budget {
			return fmt.Errorf("live: %w after %d hops (%d servers visited, %d still queued; raise Config.JoinMaxHops)",
				ErrJoinHopsExhausted, hops, len(tried), len(frontier))
		}
		addr := frontier[0]
		frontier = frontier[1:]
		if tried[addr] || addr == s.cfg.Addr {
			continue
		}
		tried[addr] = true
		msg := &wire.Message{
			Kind: wire.KindJoin,
			From: s.cfg.ID,
			Addr: s.cfg.Addr,
			Join: &wire.Join{ID: s.cfg.ID, Addr: s.cfg.Addr},
		}
		if stamp {
			s.stampEpoch(msg)
		}
		rep, err := s.tr.Call(addr, msg)
		if err != nil {
			lastErr = err // dead server: backtrack to others
			unreachable++
			continue
		}
		if err := wire.RemoteError(rep); err != nil {
			lastErr = err // refusing server (e.g. loop avoidance): backtrack
			refused++
			continue
		}
		jr := rep.JoinReply
		if jr == nil {
			lastErr = fmt.Errorf("live: join got %v reply", rep.Kind)
			continue
		}
		if jr.Accepted {
			s.observeEpoch(rep.Epoch)
			s.mu.Lock()
			s.parentID = jr.ParentID
			s.parentAddr = jr.ParentAddr
			s.parentMisses = 0
			s.parentReportMisses = 0
			// A new (or re-joined) parent starts with no proven delta
			// or adaptive capability and holds none of our versions.
			s.parentV3 = false
			s.parentHaveVersion = 0
			s.parentNeedFull = false
			s.parentAdaptive = false
			// Epoch state restarts with the new relationship; a stamped
			// accept is the parent's v4 proof.
			s.parentEpoch = 0
			s.parentEpochCapable = false
			if s.epochEnabled() && rep.Epoch != 0 {
				s.parentEpoch = rep.Epoch
				s.parentEpochCapable = true
			}
			s.rememberLocked(jr.ParentID, jr.ParentAddr)
			s.publishSnapshotLocked()
			s.mu.Unlock()
			// Prime the parent's view and our root path immediately.
			s.reportToParent()
			s.sendHeartbeat()
			return nil
		}
		// Descend least-depth first, then fewest descendants (the
		// paper's rule); prepending keeps the search depth-first so
		// backtracking visits the current branch before its siblings.
		kids := jr.Children
		sort.Slice(kids, func(i, j int) bool {
			if kids[i].Depth != kids[j].Depth {
				return kids[i].Depth < kids[j].Depth
			}
			if kids[i].Descendants != kids[j].Descendants {
				return kids[i].Descendants < kids[j].Descendants
			}
			return kids[i].ID < kids[j].ID
		})
		next := make([]string, 0, len(kids))
		for _, k := range kids {
			if !tried[k.Addr] {
				next = append(next, k.Addr)
			}
		}
		frontier = append(next, frontier...)
	}
	// Frontier drained: every discovered server was tried and none
	// accepted. Unlike a hop-budget exhaustion this is final — there is
	// nothing left to explore.
	if lastErr != nil {
		return fmt.Errorf("live: %w (%d refused, %d unreachable): last error: %v",
			ErrJoinRefused, refused, unreachable, lastErr)
	}
	return fmt.Errorf("live: %w: every discovered server redirected elsewhere", ErrJoinRefused)
}

// IsRoot reports whether the server currently has no parent.
func (s *Server) IsRoot() bool {
	return s.snap.Load().parentAddr == ""
}

// ParentID returns the current parent (empty at the root).
func (s *Server) ParentID() string {
	return s.snap.Load().parentID
}

// NumChildren returns the current child count.
func (s *Server) NumChildren() int {
	return len(s.snap.Load().children)
}

// BranchRecords returns how many records the branch summary covers — the
// convergence signal tests and examples poll.
func (s *Server) BranchRecords() uint64 {
	if b := s.snap.Load().branchSummary; b != nil {
		return b.Records
	}
	return 0
}

// NumReplicas returns how many overlay replicas the server holds.
func (s *Server) NumReplicas() int {
	return s.snap.Load().numReplicas
}

// CoveredRecords returns how many records this server can currently route
// queries to: its own branch, plus each non-ancestor replica's branch,
// plus each ancestor's locally attached data. Because those sets partition
// the hierarchy, the value equals the federation's total record count
// exactly when the overlay has fully converged.
func (s *Server) CoveredRecords() uint64 {
	return s.snap.Load().covered
}

// RootPath returns the server's current root path (IDs, root first).
func (s *Server) RootPath() []string {
	return append([]string(nil), s.snap.Load().rootPath...)
}
