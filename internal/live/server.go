// Package live is the runnable ROADS prototype: real servers exchanging
// wire messages over a pluggable transport (in-process or TCP), each
// running its own goroutines for aggregation ticks, heartbeats, and query
// serving. It mirrors the paper's Java prototype: the simulator
// (internal/core) answers "what are the costs", the live stack answers
// "does the protocol actually run".
package live

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"roads/internal/obs"
	"roads/internal/policy"
	"roads/internal/record"
	"roads/internal/store"
	"roads/internal/summary"
	"roads/internal/transport"
	"roads/internal/wire"
)

// Config configures one live server.
type Config struct {
	ID   string
	Addr string
	// Schema is the federation-wide record schema.
	Schema *record.Schema
	// Summary configures summary construction.
	Summary summary.Config
	// MaxChildren caps the hierarchy degree.
	MaxChildren int
	// AggregateEvery is the summary refresh period (t_s). Small values
	// make tests fast; production would use minutes.
	AggregateEvery time.Duration
	// HeartbeatEvery is the parent/child liveness period.
	HeartbeatEvery time.Duration
	// HeartbeatMiss is how many missed periods mark a peer dead.
	HeartbeatMiss int
	// ReplicaTTLFloor is the minimum overlay-replica TTL regardless of how
	// fast the ticks run: a full push round must always fit inside the TTL
	// even when encoding runs far slower than the tick (loaded hosts, race
	// detector), or replicas flap and coverage never settles. Zero uses
	// DefaultReplicaTTLFloor; fast-tick tests may lower it, slow
	// production deployments raise it.
	ReplicaTTLFloor time.Duration
	// DisableReplicaBatch falls back to one KindReplicaPush call per
	// replica per child instead of one KindReplicaBatch per child — the
	// pre-batching wire behaviour, kept for benchmarks and for driving
	// peers that predate KindReplicaBatch.
	DisableReplicaBatch bool
	// LegacyQueryLocking evaluates queries under the server mutex against
	// the live routing maps (the pre-snapshot behaviour) instead of
	// against the lock-free routing snapshot — the measurable baseline
	// the snapshot path is benchmarked against.
	LegacyQueryLocking bool
	// Metrics is the obs registry the server's named series register into
	// (roadsd passes one shared registry per process and serves it at
	// /metrics). Nil gives the server a private registry: series are
	// label-free, so two servers sharing a registry would collide on
	// names — and tests and simulations run many servers per process.
	Metrics *obs.Registry
	// Cost models the store backend.
	Cost store.CostModel
}

// DefaultConfig returns test-friendly defaults for the given identity.
func DefaultConfig(id, addr string, schema *record.Schema) Config {
	scfg := summary.DefaultConfig()
	scfg.Buckets = 200
	return Config{
		ID:              id,
		Addr:            addr,
		Schema:          schema,
		Summary:         scfg,
		MaxChildren:     8,
		AggregateEvery:  50 * time.Millisecond,
		HeartbeatEvery:  50 * time.Millisecond,
		HeartbeatMiss:   4,
		ReplicaTTLFloor: DefaultReplicaTTLFloor,
	}
}

// DefaultReplicaTTLFloor is the replica-TTL floor applied when
// Config.ReplicaTTLFloor is zero.
const DefaultReplicaTTLFloor = 5 * time.Second

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.ID == "" || c.Addr == "" {
		return fmt.Errorf("live: ID and Addr are required")
	}
	if c.Schema == nil {
		return fmt.Errorf("live: Schema is required")
	}
	if err := c.Summary.Validate(); err != nil {
		return err
	}
	if c.MaxChildren <= 0 {
		return fmt.Errorf("live: MaxChildren must be positive")
	}
	if c.AggregateEvery <= 0 || c.HeartbeatEvery <= 0 || c.HeartbeatMiss <= 0 {
		return fmt.Errorf("live: periods and HeartbeatMiss must be positive")
	}
	if c.ReplicaTTLFloor < 0 {
		return fmt.Errorf("live: ReplicaTTLFloor must not be negative")
	}
	return nil
}

// replicaTTLFloor returns the configured floor, defaulted.
func (c Config) replicaTTLFloor() time.Duration {
	if c.ReplicaTTLFloor > 0 {
		return c.ReplicaTTLFloor
	}
	return DefaultReplicaTTLFloor
}

// childState tracks one child branch.
type childState struct {
	id, addr    string
	branch      *summary.Summary
	depth       int
	descendants int
	lastSeen    time.Time
	// kids are the child's own children, piggybacked on its summary
	// reports; they become failover Alternates on redirects to the child.
	kids []wire.RedirectInfo
}

// replicaState is one overlay replica.
type replicaState struct {
	originID, originAddr string
	branch               *summary.Summary
	local                *summary.Summary // ancestors only
	ancestor             bool
	// level is the origin's distance in hierarchy levels (1 = own
	// sibling or parent); scoped queries filter on it.
	level int
	// received is when this replica last refreshed; stale replicas age
	// out (soft state), so crashed origins stop attracting redirects.
	received time.Time
	// fallbacks are the origin's children, carried on the push; they
	// become failover Alternates on redirects to the origin.
	fallbacks []wire.RedirectInfo
}

// Server is one live ROADS server.
type Server struct {
	cfg Config
	tr  transport.Transport

	mu            sync.Mutex
	owners        []*policy.Owner
	store         *store.Store
	parentID      string
	parentAddr    string
	parentMisses  int
	rejoining     bool
	rootPath      []string
	rootPathAddrs []string
	siblingsOfMe  []wire.RedirectInfo // from heartbeat replies; root election
	children      map[string]*childState
	replicas      map[string]*replicaState
	localSummary  *summary.Summary
	branchSummary *summary.Summary

	// snap is the immutable routing snapshot the lock-free read paths
	// (handleQuery, handleStatus, the public accessors) evaluate against.
	// Never nil after NewServer; write paths republish it via
	// publishSnapshotLocked while holding s.mu.
	snap atomic.Pointer[routingSnapshot]

	// mx holds the operational counters (monotone since startup) as named
	// obs series. The counters are atomics, not mutex-guarded fields: the
	// query hot path bumps them without touching s.mu, and a /metrics
	// scrape reads them without blocking a query.
	mx *serverMetrics
	// summaryFailing tracks the summary-refresh error state so the OK →
	// failing and failing → recovered transitions each log exactly once
	// instead of once per tick.
	summaryFailing atomic.Bool
	// lastRefresh is the unix-nano time of the last successful summary
	// refresh (0 before the first); roads_summary_age_seconds derives
	// from it.
	lastRefresh atomic.Int64
	startTime   time.Time

	closer  io.Closer
	stop    chan struct{}
	wg      sync.WaitGroup
	started bool
}

// NewServer creates a server (not yet listening).
func NewServer(cfg Config, tr transport.Transport) (*Server, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Server{
		cfg:       cfg,
		tr:        tr,
		store:     store.New(cfg.Schema, cfg.Cost),
		children:  make(map[string]*childState),
		replicas:  make(map[string]*replicaState),
		stop:      make(chan struct{}),
		startTime: time.Now(),
	}
	// Publish the empty snapshot so the lock-free paths never see nil —
	// the metric gauges registered next read it too.
	s.mu.Lock()
	s.publishSnapshotLocked()
	s.mu.Unlock()
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	s.mx = newServerMetrics(s, reg)
	return s, nil
}

// ID returns the server's identity.
func (s *Server) ID() string { return s.cfg.ID }

// Addr returns the server's listen address.
func (s *Server) Addr() string { return s.cfg.Addr }

// AttachOwner attaches a resource owner locally. Owners in ExportRecords
// mode have their records copied into the server's store.
func (s *Server) AttachOwner(o *policy.Owner) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.owners = append(s.owners, o)
	if o.Policy.Mode == policy.ExportRecords {
		recs, err := o.ExportRecords()
		if err != nil {
			return err
		}
		s.store.Add(recs...)
	}
	s.publishSnapshotLocked()
	return nil
}

// Start begins listening and runs the background loops. The server starts
// as a root of its own one-node hierarchy; Join attaches it elsewhere.
func (s *Server) Start() error {
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		return fmt.Errorf("live: server %s already started", s.cfg.ID)
	}
	s.started = true
	s.rootPath = []string{s.cfg.ID}
	s.rootPathAddrs = []string{s.cfg.Addr}
	s.publishSnapshotLocked()
	s.mu.Unlock()

	closer, err := s.tr.Listen(s.cfg.Addr, s.handle)
	if err != nil {
		return err
	}
	s.closer = closer

	s.refreshSummaries()

	s.wg.Add(2)
	go s.aggregationLoop()
	go s.heartbeatLoop()
	return nil
}

// Kill shuts the server down abruptly — no Leave messages, simulating a
// crash. Peers must discover the death through missed heartbeats and
// soft-state expiry. Intended for failure-injection tests and chaos demos.
func (s *Server) Kill() { s.shutdown(false) }

// Stop leaves the hierarchy gracefully and shuts down.
func (s *Server) Stop() { s.shutdown(true) }

// shutdown runs both teardown paths. started is flipped while s.mu is
// still held, so of any number of concurrent Kill/Stop callers exactly one
// reaches close(s.stop) — checking under the lock but closing after
// releasing it let a Kill and a Stop race into a double close.
func (s *Server) shutdown(graceful bool) {
	s.mu.Lock()
	if !s.started {
		s.mu.Unlock()
		return
	}
	s.started = false
	parentAddr := s.parentAddr
	childAddrs := make([]string, 0, len(s.children))
	for _, c := range s.children {
		childAddrs = append(childAddrs, c.addr)
	}
	s.mu.Unlock()

	if graceful {
		leave := &wire.Message{Kind: wire.KindLeave, From: s.cfg.ID, Addr: s.cfg.Addr}
		if parentAddr != "" {
			_, _ = s.tr.Call(parentAddr, leave)
		}
		for _, addr := range childAddrs {
			_, _ = s.tr.Call(addr, leave)
		}
	}

	close(s.stop)
	s.wg.Wait()
	if s.closer != nil {
		_ = s.closer.Close()
	}
}

// Join attaches the server under the hierarchy reachable at seedAddr,
// descending per the paper: query the contact, follow the least-depth
// child branch until someone accepts, backtracking into other branches if
// a descent dead-ends (server gone or all refusing).
func (s *Server) Join(seedAddr string) error {
	tried := make(map[string]bool)
	frontier := []string{seedAddr}
	var lastErr error
	for hops := 0; len(frontier) > 0 && hops < 256; hops++ {
		addr := frontier[0]
		frontier = frontier[1:]
		if tried[addr] || addr == s.cfg.Addr {
			continue
		}
		tried[addr] = true
		rep, err := s.tr.Call(addr, &wire.Message{
			Kind: wire.KindJoin,
			From: s.cfg.ID,
			Addr: s.cfg.Addr,
			Join: &wire.Join{ID: s.cfg.ID, Addr: s.cfg.Addr},
		})
		if err == nil {
			err = wire.RemoteError(rep)
		}
		if err != nil {
			lastErr = err // dead or refusing server: backtrack to others
			continue
		}
		jr := rep.JoinReply
		if jr == nil {
			lastErr = fmt.Errorf("live: join got %v reply", rep.Kind)
			continue
		}
		if jr.Accepted {
			s.mu.Lock()
			s.parentID = jr.ParentID
			s.parentAddr = jr.ParentAddr
			s.parentMisses = 0
			s.publishSnapshotLocked()
			s.mu.Unlock()
			// Prime the parent's view and our root path immediately.
			s.reportToParent()
			s.sendHeartbeat()
			return nil
		}
		// Descend least-depth first, then fewest descendants (the
		// paper's rule); prepending keeps the search depth-first so
		// backtracking visits the current branch before its siblings.
		kids := jr.Children
		sort.Slice(kids, func(i, j int) bool {
			if kids[i].Depth != kids[j].Depth {
				return kids[i].Depth < kids[j].Depth
			}
			if kids[i].Descendants != kids[j].Descendants {
				return kids[i].Descendants < kids[j].Descendants
			}
			return kids[i].ID < kids[j].ID
		})
		next := make([]string, 0, len(kids))
		for _, k := range kids {
			if !tried[k.Addr] {
				next = append(next, k.Addr)
			}
		}
		frontier = append(next, frontier...)
	}
	if lastErr != nil {
		return fmt.Errorf("live: join failed: %w", lastErr)
	}
	return errors.New("live: no server accepted the join")
}

// IsRoot reports whether the server currently has no parent.
func (s *Server) IsRoot() bool {
	return s.snap.Load().parentAddr == ""
}

// ParentID returns the current parent (empty at the root).
func (s *Server) ParentID() string {
	return s.snap.Load().parentID
}

// NumChildren returns the current child count.
func (s *Server) NumChildren() int {
	return len(s.snap.Load().children)
}

// BranchRecords returns how many records the branch summary covers — the
// convergence signal tests and examples poll.
func (s *Server) BranchRecords() uint64 {
	if b := s.snap.Load().branchSummary; b != nil {
		return b.Records
	}
	return 0
}

// NumReplicas returns how many overlay replicas the server holds.
func (s *Server) NumReplicas() int {
	return s.snap.Load().numReplicas
}

// CoveredRecords returns how many records this server can currently route
// queries to: its own branch, plus each non-ancestor replica's branch,
// plus each ancestor's locally attached data. Because those sets partition
// the hierarchy, the value equals the federation's total record count
// exactly when the overlay has fully converged.
func (s *Server) CoveredRecords() uint64 {
	return s.snap.Load().covered
}

// RootPath returns the server's current root path (IDs, root first).
func (s *Server) RootPath() []string {
	return append([]string(nil), s.snap.Load().rootPath...)
}
