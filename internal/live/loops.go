package live

import (
	"hash/fnv"
	"log"
	"math/rand"
	"sort"
	"time"

	"roads/internal/policy"
	"roads/internal/summary"
	"roads/internal/wire"
)

// loopRng seeds a loop's jitter RNG from the server identity (salted per
// loop), so a test cluster's tick pattern is reproducible run to run while
// distinct servers still spread out.
func loopRng(id string, salt uint64) *rand.Rand {
	h := fnv.New64a()
	_, _ = h.Write([]byte(id))
	return rand.New(rand.NewSource(int64(h.Sum64() ^ salt)))
}

// jittered scales a period by a ±10% factor. Without jitter a large
// federation phase-locks its rounds — every server whose config was
// stamped out of the same template pushes replicas in the same instant,
// thundering-herd style; the jitter decorrelates them within one period.
func jittered(d time.Duration, rng *rand.Rand) time.Duration {
	return time.Duration(float64(d) * (0.9 + 0.2*rng.Float64()))
}

// aggregationLoop periodically refreshes the local and branch summaries,
// reports the branch to the parent, and pushes overlay replicas to the
// children (paper §III-B/C).
func (s *Server) aggregationLoop() {
	defer s.wg.Done()
	rng := loopRng(s.cfg.ID, 0xa99a)
	timer := time.NewTimer(jittered(s.cfg.AggregateEvery, rng))
	defer timer.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-timer.C:
			s.refreshSummaries()
			s.reportToParent()
			s.pushReplicas()
			s.pruneDeadChildren()
			s.pruneStaleReplicas()
			timer.Reset(jittered(s.cfg.AggregateEvery, rng))
		}
	}
}

// heartbeatLoop exchanges liveness with the parent and triggers rejoin on
// parent failure.
func (s *Server) heartbeatLoop() {
	defer s.wg.Done()
	rng := loopRng(s.cfg.ID, 0x4bb4)
	timer := time.NewTimer(jittered(s.cfg.HeartbeatEvery, rng))
	defer timer.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-timer.C:
			s.sendHeartbeat()
			timer.Reset(jittered(s.cfg.HeartbeatEvery, rng))
		}
	}
}

// refreshSummaries rebuilds the local summary (store + owners) and the
// branch summary (local + children). Failures never abort serving — the
// previous summaries stay published — but they are counted
// (Status.SummaryErrors) and logged on each OK→failing transition, because
// a silently skipped refresh means the advertised state is going stale
// while queries still succeed.
func (s *Server) refreshSummaries() {
	failed := false
	local, err := summary.FromRecords(s.cfg.Schema, s.cfg.Summary, s.store.Records())
	if err != nil {
		s.noteSummaryError(err)
		return
	}
	s.mu.Lock()
	owners := append([]*policy.Owner(nil), s.owners...)
	s.mu.Unlock()
	for _, o := range owners {
		if o.Policy.Mode != policy.ExportSummary {
			continue // records-mode data already sits in the store
		}
		osum, err := o.ExportSummary(s.cfg.Summary)
		if err != nil {
			// Skip this owner's contribution but keep the rest of the
			// refresh: a partial summary beats a stale one.
			s.noteSummaryError(err)
			failed = true
			continue
		}
		_ = local.Merge(osum)
	}
	local.Origin = s.cfg.ID

	s.mu.Lock()
	s.localSummary = local
	branch := local.Clone()
	branch.Origin = s.cfg.ID
	for _, c := range s.children {
		if c.branch != nil {
			_ = branch.Merge(c.branch)
		}
	}
	s.branchSummary = branch
	s.publishSnapshotLocked()
	s.mu.Unlock()
	if !failed {
		s.lastRefresh.Store(time.Now().UnixNano())
		s.noteSummaryOK()
	}
}

// noteSummaryError counts one summary-refresh failure and logs only on
// the OK→failing transition, so a persistent fault produces one line
// rather than one per aggregation tick.
func (s *Server) noteSummaryError(err error) {
	s.mx.summaryErrors.Inc()
	if s.summaryFailing.CompareAndSwap(false, true) {
		log.Printf("live %s: summary refresh failing (serving previous summaries): %v", s.cfg.ID, err)
	}
}

// noteSummaryOK marks a fully clean refresh, logging the recovery if the
// previous state was failing.
func (s *Server) noteSummaryOK() {
	if s.summaryFailing.CompareAndSwap(true, false) {
		log.Printf("live %s: summary refresh recovered", s.cfg.ID)
	}
}

// subtreeDepth returns the depth of this server's subtree (leaf = 1).
func (s *Server) subtreeDepthLocked() int {
	max := 0
	for _, c := range s.children {
		if c.depth > max {
			max = c.depth
		}
	}
	return max + 1
}

func (s *Server) descendantsLocked() int {
	total := 0
	for _, c := range s.children {
		total += c.descendants + 1
	}
	return total
}

// childRedirectsLocked snapshots the children as redirect infos (with
// branch record counts), for summary reports and replica fallbacks.
// Callers hold s.mu.
func (s *Server) childRedirectsLocked() []wire.RedirectInfo {
	if len(s.children) == 0 {
		return nil
	}
	out := make([]wire.RedirectInfo, 0, len(s.children))
	for _, c := range s.children {
		ri := wire.RedirectInfo{ID: c.id, Addr: c.addr}
		if c.branch != nil {
			ri.Records = c.branch.Records
		}
		out = append(out, ri)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// reportToParent sends the branch summary (with depth/descendant counts
// piggybacked) up the hierarchy.
func (s *Server) reportToParent() {
	s.mu.Lock()
	parentAddr := s.parentAddr
	branch := s.branchSummary
	depth := s.subtreeDepthLocked()
	desc := s.descendantsLocked()
	kids := s.childRedirectsLocked()
	s.mu.Unlock()
	if parentAddr == "" || branch == nil {
		return
	}
	msg := &wire.Message{
		Kind: wire.KindSummaryReport,
		From: s.cfg.ID,
		Addr: s.cfg.Addr,
		Report: &wire.SummaryReport{
			Summary:     wire.FromSummary(branch),
			Depth:       depth,
			Descendants: desc,
			Children:    kids,
		},
	}
	if rep, err := s.tr.Call(parentAddr, msg); err != nil || wire.RemoteError(rep) != nil {
		s.noteParentMiss()
	} else {
		s.noteParentOK()
	}
}

// pushReplicas distributes overlay state to every child: each sibling's
// branch summary, this server's own branch+local (ancestor push), and all
// replicas this server holds (sibling replicas become the child's
// ancestor-sibling replicas; ancestor replicas stay ancestors). After L
// rounds every server holds exactly the paper's replica set.
//
// All pushes for one child travel in a single KindReplicaBatch message, so
// a tick costs one call per child rather than one per (child × replica) —
// the overlay-maintenance traffic the paper identifies as ROADS' dominant
// overhead. Each push DTO is encoded once and shared across the per-child
// batches. DisableReplicaBatch restores the per-push calls.
func (s *Server) pushReplicas() {
	// Snapshot under the lock: childState fields are mutated in place by
	// summary reports, so copy the values; summary objects themselves are
	// replaced wholesale on update and never mutated after publish.
	type childSnap struct {
		id, addr string
		branch   *summary.Summary
		kids     []wire.RedirectInfo
	}
	s.mu.Lock()
	children := make([]childSnap, 0, len(s.children))
	for _, c := range s.children {
		children = append(children, childSnap{id: c.id, addr: c.addr, branch: c.branch, kids: c.kids})
	}
	sort.Slice(children, func(i, j int) bool { return children[i].id < children[j].id })
	ownBranch := s.branchSummary
	ownLocal := s.localSummary
	reps := make([]*replicaState, 0, len(s.replicas))
	for _, r := range s.replicas {
		reps = append(reps, r)
	}
	s.mu.Unlock()
	if len(children) == 0 {
		return
	}

	// Build every push DTO once; the per-child batches share them.
	// Sibling branches: distance 1 from the child.
	sibPush := make([]*wire.ReplicaPush, len(children))
	for i, sib := range children {
		if sib.branch == nil {
			continue
		}
		sibPush[i] = &wire.ReplicaPush{
			OriginID:   sib.id,
			OriginAddr: sib.addr,
			Branch:     wire.FromSummary(sib.branch),
			Level:      1,
			Fallbacks:  sib.kids,
		}
	}
	// Self as ancestor (branch + local piggyback): distance 1.
	var ancestor *wire.ReplicaPush
	if ownBranch != nil {
		ancestor = &wire.ReplicaPush{
			OriginID:   s.cfg.ID,
			OriginAddr: s.cfg.Addr,
			Branch:     wire.FromSummary(ownBranch),
			Local:      wire.FromSummary(ownLocal),
			Ancestor:   true,
			Level:      1,
		}
	}
	// Forward everything this server replicates (its siblings and
	// ancestors become the child's ancestor-siblings and ancestors, one
	// level further away).
	forwarded := make([]*wire.ReplicaPush, 0, len(reps))
	for _, r := range reps {
		p := &wire.ReplicaPush{
			OriginID:   r.originID,
			OriginAddr: r.originAddr,
			Branch:     wire.FromSummary(r.branch),
			Ancestor:   r.ancestor,
			Level:      r.level + 1,
			Fallbacks:  r.fallbacks,
		}
		if r.ancestor && r.local != nil {
			p.Local = wire.FromSummary(r.local)
		}
		forwarded = append(forwarded, p)
	}

	for i, child := range children {
		pushes := make([]*wire.ReplicaPush, 0, len(children)+len(forwarded))
		for j, p := range sibPush {
			if j != i && p != nil {
				pushes = append(pushes, p)
			}
		}
		if ancestor != nil {
			pushes = append(pushes, ancestor)
		}
		pushes = append(pushes, forwarded...)
		if len(pushes) == 0 {
			continue
		}
		if s.cfg.DisableReplicaBatch {
			for _, p := range pushes {
				msg := &wire.Message{Kind: wire.KindReplicaPush, From: s.cfg.ID, Addr: s.cfg.Addr, Replica: p}
				_, _ = s.tr.Call(child.addr, msg)
			}
			continue
		}
		msg := &wire.Message{
			Kind:  wire.KindReplicaBatch,
			From:  s.cfg.ID,
			Addr:  s.cfg.Addr,
			Batch: &wire.ReplicaBatch{Pushes: pushes},
		}
		_, _ = s.tr.Call(child.addr, msg)
	}
}

// pruneDeadChildren drops children that have not reported within the
// failure window; their subtrees rejoin on their own via root paths. The
// window is floored so heavily loaded (or instrumented) processes whose
// message handling runs slower than the tick never mistake slowness for
// death.
func (s *Server) pruneDeadChildren() {
	deadline := time.Duration(s.cfg.HeartbeatMiss) * s.cfg.HeartbeatEvery
	if deadline < 2*time.Second {
		deadline = 2 * time.Second
	}
	now := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	changed := false
	for id, c := range s.children {
		if c.lastSeen.IsZero() {
			c.lastSeen = now
			continue
		}
		if now.Sub(c.lastSeen) > deadline {
			delete(s.children, id)
			changed = true
		}
	}
	if changed {
		s.publishSnapshotLocked()
	}
}

// pruneStaleReplicas ages out overlay replicas that have not refreshed
// recently — replicas are soft state, so a crashed origin's summary stops
// attracting redirects after its TTL. The window is generous (propagation
// takes one aggregation tick per hierarchy level).
func (s *Server) pruneStaleReplicas() {
	ttl := time.Duration(4*s.cfg.HeartbeatMiss) * s.cfg.AggregateEvery
	if floor := s.cfg.replicaTTLFloor(); ttl < floor {
		// Floor (configurable via Config.ReplicaTTLFloor): a full push
		// round must always fit inside the TTL, even when encoding runs
		// far slower than the tick (loaded hosts, race detector);
		// otherwise replicas flap and coverage never settles.
		ttl = floor
	}
	now := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	changed := false
	for id, r := range s.replicas {
		if r.received.IsZero() {
			r.received = now
			continue
		}
		if now.Sub(r.received) > ttl {
			delete(s.replicas, id)
			changed = true
		}
	}
	if changed {
		s.publishSnapshotLocked()
	}
}

// sendHeartbeat pings the parent; the reply refreshes the root path and
// the sibling list (for root election).
func (s *Server) sendHeartbeat() {
	s.mu.Lock()
	parentAddr := s.parentAddr
	rejoining := s.rejoining
	s.mu.Unlock()
	if parentAddr == "" {
		// Root: its root path is itself — but never clobber the path
		// while a rejoin is in flight; the failure handler still needs
		// the pre-failure ancestry.
		if !rejoining {
			s.mu.Lock()
			if !s.rejoining && s.parentAddr == "" {
				s.rootPath = []string{s.cfg.ID}
				s.rootPathAddrs = []string{s.cfg.Addr}
				s.publishSnapshotLocked()
			}
			s.mu.Unlock()
		}
		return
	}
	rep, err := s.tr.Call(parentAddr, &wire.Message{
		Kind: wire.KindHeartbeat,
		From: s.cfg.ID,
		Addr: s.cfg.Addr,
	})
	if err != nil || wire.RemoteError(rep) != nil || rep.Heartbeat == nil {
		s.noteParentMiss()
		return
	}
	s.noteParentOK()
	s.mu.Lock()
	s.rootPath = append(append([]string(nil), rep.Heartbeat.RootPath...), s.cfg.ID)
	s.rootPathAddrs = append(append([]string(nil), rep.Heartbeat.PathAddrs...), s.cfg.Addr)
	if rep.QueryRep != nil {
		s.siblingsOfMe = rep.QueryRep.Redirects
	}
	s.publishSnapshotLocked()
	s.mu.Unlock()
}

func (s *Server) noteParentMiss() {
	s.mu.Lock()
	s.parentMisses++
	var plan *rejoinPlan
	if s.parentMisses >= s.cfg.HeartbeatMiss && !s.rejoining && s.parentAddr != "" {
		plan = s.planRejoinLocked()
	}
	s.mu.Unlock()
	if plan != nil {
		s.executeRejoin(plan)
	}
}

func (s *Server) noteParentOK() {
	s.mu.Lock()
	s.parentMisses = 0
	s.mu.Unlock()
}

// rejoinPlan captures, at the moment a parent failure is detected, the
// state a recovery needs: which parent died, the surviving ancestry, and
// the sibling list for root election. Capturing synchronously under the
// lock matters — asynchronous handlers raced with the heartbeat loop,
// which resets a parentless server's root path to itself, and a clobbered
// path made orphans elect themselves root (hierarchy split).
type rejoinPlan struct {
	deadID        string
	ancestors     []string // addresses, nearest (grandparent) first
	parentWasRoot bool
	siblings      []wire.RedirectInfo
}

// planRejoinLocked builds the plan, marks the rejoin in flight, and clears
// the dead parent. Callers hold s.mu and must have checked !s.rejoining.
func (s *Server) planRejoinLocked() *rejoinPlan {
	p := &rejoinPlan{
		deadID:   s.parentID,
		siblings: append([]wire.RedirectInfo(nil), s.siblingsOfMe...),
	}
	// The root path is [root ... grandparent parent self]; the dead
	// parent was the root exactly when nothing sits above it.
	path := s.rootPath
	addrs := s.rootPathAddrs
	p.parentWasRoot = len(path) <= 2
	for i := len(path) - 3; i >= 0 && i < len(addrs); i-- {
		p.ancestors = append(p.ancestors, addrs[i])
	}
	s.rejoining = true
	s.parentID = ""
	s.parentAddr = ""
	s.parentMisses = 0
	s.publishSnapshotLocked()
	s.mx.parentFailovers.Inc()
	return p
}

// executeRejoin runs the recovery: rejoin via surviving ancestors, or —
// only if the dead parent was the root — elect a new root among the
// siblings (smallest ID, paper §III-A).
func (s *Server) executeRejoin(p *rejoinPlan) {
	defer func() {
		s.mu.Lock()
		s.rejoining = false
		s.mu.Unlock()
	}()

	if !p.parentWasRoot {
		// The true root is still out there: keep trying the surviving
		// ancestors; never elect a new root over a live one.
		for attempt := 0; attempt < 4*s.cfg.HeartbeatMiss; attempt++ {
			for _, addr := range p.ancestors {
				if s.Join(addr) == nil {
					return
				}
			}
			time.Sleep(s.cfg.HeartbeatEvery)
		}
		return // give up this round; the next detection retries
	}

	// Parent was the root: elect among the siblings; the smallest ID
	// (including us) becomes the new root.
	minID, minAddr := s.cfg.ID, s.cfg.Addr
	for _, sib := range p.siblings {
		if sib.ID != p.deadID && sib.ID < minID {
			minID, minAddr = sib.ID, sib.Addr
		}
	}
	if minID == s.cfg.ID {
		return // we are the new root; siblings will join us
	}
	// Give the winner a moment to notice, then join under it, retrying
	// while it may still be rejoining itself.
	for attempt := 0; attempt < 2*s.cfg.HeartbeatMiss; attempt++ {
		if s.Join(minAddr) == nil {
			return
		}
		time.Sleep(s.cfg.HeartbeatEvery)
	}
}
