package live

import (
	"hash/fnv"
	"log"
	"math/rand"
	"sort"
	"sync"
	"time"

	"roads/internal/policy"
	"roads/internal/summary"
	"roads/internal/wire"
)

// loopRng seeds a loop's jitter RNG from the server identity (salted per
// loop), so a test cluster's tick pattern is reproducible run to run while
// distinct servers still spread out.
func loopRng(id string, salt uint64) *rand.Rand {
	h := fnv.New64a()
	_, _ = h.Write([]byte(id))
	return rand.New(rand.NewSource(int64(h.Sum64() ^ salt)))
}

// jittered scales a period by a ±10% factor. Without jitter a large
// federation phase-locks its rounds — every server whose config was
// stamped out of the same template pushes replicas in the same instant,
// thundering-herd style; the jitter decorrelates them within one period.
func jittered(d time.Duration, rng *rand.Rand) time.Duration {
	return time.Duration(float64(d) * (0.9 + 0.2*rng.Float64()))
}

// aggregationLoop periodically refreshes the local and branch summaries,
// reports the branch to the parent, and pushes overlay replicas to the
// children (paper §III-B/C).
func (s *Server) aggregationLoop() {
	defer s.wg.Done()
	rng := loopRng(s.cfg.ID, 0xa99a)
	timer := time.NewTimer(jittered(s.cfg.AggregateEvery, rng))
	defer timer.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-timer.C:
			s.refreshSummaries()
			s.reportToParent()
			s.pushReplicas()
			s.pruneDeadChildren()
			s.pruneStaleReplicas()
			timer.Reset(jittered(s.cfg.AggregateEvery, rng))
		}
	}
}

// heartbeatLoop exchanges liveness with the parent and triggers rejoin on
// parent failure.
func (s *Server) heartbeatLoop() {
	defer s.wg.Done()
	rng := loopRng(s.cfg.ID, 0x4bb4)
	timer := time.NewTimer(jittered(s.cfg.HeartbeatEvery, rng))
	defer timer.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-timer.C:
			s.sendHeartbeat()
			timer.Reset(jittered(s.cfg.HeartbeatEvery, rng))
		}
	}
}

// exportWorkers bounds the concurrent owner exports one refresh runs:
// exports are independent CPU-bound FromRecords builds, but one refresh
// must not commandeer the whole machine.
const exportWorkers = 4

// refreshSummaries rebuilds the local summary (store + owners) and the
// branch summary (local + children). Failures never abort serving — the
// previous summaries stay published — but they are counted
// (Status.SummaryErrors) and logged on each OK→failing transition, because
// a silently skipped refresh means the advertised state is going stale
// while queries still succeed.
//
// The rebuild is change-driven (unless Config.DisableDeltaDissemination):
// the store part is cached against the store's mutation epoch, each
// owner's export is cached against the owner's record-set generation, and
// the branch re-merge is skipped while neither the local content hash nor
// the child epoch moved — so a steady-state tick costs a few counter
// reads instead of O(records × attributes) work. Owners that did change
// re-export concurrently on a bounded worker pool.
func (s *Server) refreshSummaries() {
	start := time.Now()
	defer func() { s.refreshBusyNs.Add(time.Since(start).Nanoseconds()) }()
	s.refreshMu.Lock()
	defer s.refreshMu.Unlock()
	delta := !s.cfg.DisableDeltaDissemination
	round := s.aggRound.Add(1)
	if delta && round%s.cfg.antiEntropyEvery() == 0 {
		s.mx.antiEntropyRounds.Inc()
	}
	if s.cfg.adaptiveOn() && round%s.cfg.replanEvery() == 0 {
		s.replanLocked()
	}
	failed := false

	// Store part: rebuild only when the store's mutation epoch moved.
	// The epoch is read before the summary, so a concurrent mutation can
	// only make the cached summary newer than its epoch claims — the next
	// tick re-exports. Never the stale direction. The re-export itself is
	// the store's merge of per-shard partial summaries (maintained
	// incrementally on write), so even a changed tick costs the shards
	// touched since the last export, not O(records × attributes).
	var storeSum *summary.Summary
	storeFresh := true
	if delta {
		epoch := s.store.Epoch()
		if s.haveStore && epoch == s.storeEpoch {
			storeSum = s.storeSummary
			storeFresh = false
		} else {
			sum, err := s.store.ExportSummary()
			if err != nil {
				s.noteSummaryError(err)
				return
			}
			s.storeSummary, s.storeEpoch, s.haveStore = sum, epoch, true
			storeSum = sum
		}
	} else {
		sum, err := summary.FromRecords(s.cfg.Schema, s.cfg.Summary, s.store.Records())
		if err != nil {
			s.noteSummaryError(err)
			return
		}
		storeSum = sum
	}

	// Owner part: reuse cached exports for unchanged owners; re-export
	// the rest (concurrently when several changed at once).
	s.mu.Lock()
	owners := append([]*policy.Owner(nil), s.owners...)
	s.mu.Unlock()
	exports := make([]*summary.Summary, len(owners)) // cached or fresh, nil = skip
	gens := make([]uint64, len(owners))
	errs := make([]error, len(owners))
	fresh := make([]bool, len(owners))
	var need []int
	for i, o := range owners {
		if o.Policy.Mode != policy.ExportSummary {
			continue // records-mode data already sits in the store
		}
		if delta {
			if e, ok := s.ownerCache[o]; ok && e.gen == o.Generation() {
				exports[i] = e.sum
				continue
			}
		}
		need = append(need, i)
	}
	// Owners export in the current adaptive geometry (curCfg is refresh
	// state, stable while refreshMu is held; it equals Config.Summary when
	// adaptation is off or the plan is at base).
	curCfg := s.curCfg
	export := func(i int) {
		o := owners[i]
		// Generation before export: a mutation landing between the two
		// makes the cached summary newer than its generation claims, so
		// the next tick re-exports — never the stale direction.
		gens[i] = o.Generation()
		exports[i], errs[i] = o.ExportSummary(curCfg)
		fresh[i] = true
	}
	if delta && len(need) > 1 {
		workers := exportWorkers
		if workers > len(need) {
			workers = len(need)
		}
		idx := make(chan int)
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for i := range idx {
					export(i)
				}
			}()
		}
		for _, i := range need {
			idx <- i
		}
		close(idx)
		wg.Wait()
	} else {
		for _, i := range need {
			export(i)
		}
	}

	// Merge phase (serialized, owner order — deterministic content hash).
	// Skipped entirely when nothing changed: the published local summary
	// is still current.
	rebuildLocal := !delta || storeFresh || len(need) > 0
	var local *summary.Summary
	if rebuildLocal {
		if delta {
			local = storeSum.Clone()
		} else {
			local = storeSum // fresh this tick; safe to own outright
		}
		for i, o := range owners {
			if o.Policy.Mode != policy.ExportSummary {
				continue
			}
			if fresh[i] && errs[i] != nil {
				// Skip this owner's contribution but keep the rest of the
				// refresh: a partial summary beats a stale one. Not cached,
				// so every tick retries (and keeps counting the error).
				s.noteSummaryError(errs[i])
				failed = true
				continue
			}
			if exports[i] == nil {
				continue
			}
			if err := local.Merge(exports[i]); err != nil {
				s.noteSummaryError(err)
				failed = true
				if delta {
					delete(s.ownerCache, o) // retry (and recount) next tick
				}
				continue
			}
			if delta && fresh[i] {
				s.ownerCache[o] = ownerCacheEntry{gen: gens[i], sum: exports[i]}
			}
		}
		local.Origin = s.cfg.ID
		local.ComputeVersion()
	}

	// Branch part: re-merge only when the local content or a child branch
	// actually changed; otherwise the whole refresh was a no-op and the
	// published summaries stand.
	s.mu.Lock()
	localDirty := true
	if delta {
		localDirty = rebuildLocal &&
			(s.localSummary == nil || local.Version != s.localSummary.Version)
	}
	if delta && !localDirty && s.haveBranch && s.childEpoch == s.lastChildEpoch {
		s.mu.Unlock()
		s.mx.rebuildsSkipped.Inc()
		s.lastRefresh.Store(time.Now().UnixNano())
		if !failed {
			s.noteSummaryOK()
		}
		return
	}
	if localDirty {
		s.localSummary = local
	}
	branch := s.localSummary.Clone()
	branch.Origin = s.cfg.ID
	for _, c := range s.children {
		if c.branch != nil {
			_ = branch.Merge(c.branch)
		}
	}
	// Re-condense after the child merges: children export their own
	// condensed sets, but merging branches can push the union back over
	// the threshold. Must precede ComputeVersion so the stamped version
	// reflects the condensed content.
	branch.Condense()
	branch.ComputeVersion()
	s.branchSummary = branch
	s.lastChildEpoch = s.childEpoch
	s.haveBranch = true
	s.publishSnapshotLocked()
	s.mu.Unlock()
	// Partial success still advances the staleness clock: the published
	// summaries were rebuilt this tick from everything reachable, so the
	// advertised state is current even while one owner keeps failing —
	// the per-owner errors (and the failing flag) track that separately.
	s.lastRefresh.Store(time.Now().UnixNano())
	if !failed {
		s.noteSummaryOK()
	}
}

// replanLocked folds the accumulated false-positive heat into the planner
// and installs the resulting geometry as the current export configuration.
// Callers hold refreshMu. Drained heat decays by half each replan (EWMA),
// so an attribute that stops attracting false-positive descents cools off
// and its resolution drifts back to base. A changed plan re-keys every
// summary source: the store re-summarizes under the new geometry and the
// owner export cache is dropped so owners re-export (Owner.ExportSummary
// re-enables its own store on a config change by itself).
func (s *Server) replanLocked() {
	for i := range s.fpHeat {
		h := s.fpHeat[i].Swap(0)
		name := s.cfg.Schema.Attr(i).Name
		s.heat[name] = s.heat[name]*0.5 + float64(h)
	}
	plan := s.planner.Replan(s.cfg.Schema, s.heat)
	newCfg := s.cfg.Summary
	newCfg.Resolution = plan
	deviation := 0
	for _, l := range s.planner.Levels() {
		if l != 0 {
			deviation++
		}
	}
	s.planDeviation.Store(int64(deviation))
	if newCfg.Equal(s.curCfg) {
		return
	}
	// Re-key the store's partial summaries to the new geometry before
	// adopting it; on failure the previous geometry stays installed and
	// the next replan retries.
	if err := s.store.EnableSummaries(newCfg); err != nil {
		s.noteSummaryError(err)
		return
	}
	s.curCfg = newCfg
	s.haveStore = false
	for o := range s.ownerCache {
		delete(s.ownerCache, o)
	}
	s.mx.replans.Inc()
}

// needsFlatten reports whether sum cannot be sent to a pre-v6 peer as is:
// it carries per-attribute geometry overrides (the wire layer would stamp
// v6 Mode/Plan) or condensed wildcards (a legacy matcher would silently
// produce false negatives).
func needsFlatten(sum *summary.Summary) bool {
	return sum != nil && (!sum.Cfg.Uniform() || sum.HasWildcards())
}

// flattenForLegacy returns branch re-expressed in the uniform base
// geometry for pre-v6 peers, or branch itself when it is already
// legacy-safe. The result is cached per source branch version, so the
// flatten runs once per content change rather than once per tick; and
// FlattenTo stamps deterministic versions, so version-only report
// suppression keeps working against the flattened variant.
func (s *Server) flattenForLegacy(branch *summary.Summary) *summary.Summary {
	if !needsFlatten(branch) {
		return branch
	}
	s.flatMu.Lock()
	defer s.flatMu.Unlock()
	if s.flatSum != nil && branch.Version != 0 && s.flatSrcVer == branch.Version {
		return s.flatSum
	}
	flat, err := branch.FlattenTo(s.cfg.Summary)
	if err != nil {
		// Unflattenable (schema drift): send the raw branch — the legacy
		// peer rejects it visibly instead of routing on silence.
		s.noteSummaryError(err)
		return branch
	}
	s.flatSum, s.flatSrcVer = flat, branch.Version
	return flat
}

// noteSummaryError counts one summary-refresh failure and logs only on
// the OK→failing transition, so a persistent fault produces one line
// rather than one per aggregation tick.
func (s *Server) noteSummaryError(err error) {
	s.mx.summaryErrors.Inc()
	if s.summaryFailing.CompareAndSwap(false, true) {
		log.Printf("live %s: summary refresh failing (serving previous summaries): %v", s.cfg.ID, err)
	}
}

// noteSummaryOK marks a fully clean refresh, logging the recovery if the
// previous state was failing.
func (s *Server) noteSummaryOK() {
	if s.summaryFailing.CompareAndSwap(true, false) {
		log.Printf("live %s: summary refresh recovered", s.cfg.ID)
	}
}

// RefreshInfo is a snapshot of the summary-refresh pipeline's economics:
// how many refresh ticks ran, how many reused every cached summary, how
// much wall time the refreshes consumed, and the store's partial-summary
// maintenance counters. The load harness reads it to report refresh CPU
// and rebuild-skip rates under write churn.
type RefreshInfo struct {
	// Ticks counts aggregation refresh rounds run; Skipped the subset
	// that reused every cached summary (store, owners and children all
	// unchanged).
	Ticks   uint64
	Skipped uint64
	// BusySeconds is total wall time spent inside refreshSummaries.
	BusySeconds float64
	// StoreShardRebuilds / StorePartialMerges / StoreExportsCached are the
	// server store's partial-summary counters (see store.Stats).
	StoreShardRebuilds uint64
	StorePartialMerges uint64
	StoreExportsCached uint64
}

// RefreshInfo returns the refresh pipeline counters.
func (s *Server) RefreshInfo() RefreshInfo {
	st := s.store.Stats()
	return RefreshInfo{
		Ticks:              s.aggRound.Load(),
		Skipped:            s.mx.rebuildsSkipped.Load(),
		BusySeconds:        float64(s.refreshBusyNs.Load()) / 1e9,
		StoreShardRebuilds: st.ShardRebuilds,
		StorePartialMerges: st.PartialMerges,
		StoreExportsCached: st.ExportsCached,
	}
}

// AdaptiveInfo is a snapshot of one server's adaptive-summary state: the
// feedback the planner has consumed and the plan it is currently running.
type AdaptiveInfo struct {
	// Enabled reports whether adaptive resolution is active (on by
	// default; off when DisableAdaptiveSummaries or either of the batch /
	// delta dissemination layers it rides on is disabled).
	Enabled bool
	// Replans counts summary-geometry changes installed; FPDescents the
	// false-positive descents detected on the query path (counted whether
	// or not adaptation is enabled, so static baselines measure too).
	Replans    uint64
	FPDescents uint64
	// PlanDeviation is the summed |resolution level| across attributes —
	// zero means the current plan is the static base configuration.
	PlanDeviation int64
}

// AdaptiveInfo returns the adaptive-summary counters.
func (s *Server) AdaptiveInfo() AdaptiveInfo {
	return AdaptiveInfo{
		Enabled:       s.cfg.adaptiveOn(),
		Replans:       s.mx.replans.Load(),
		FPDescents:    s.mx.fpDescents.Load(),
		PlanDeviation: s.planDeviation.Load(),
	}
}

// subtreeDepth returns the depth of this server's subtree (leaf = 1).
func (s *Server) subtreeDepthLocked() int {
	max := 0
	for _, c := range s.children {
		if c.depth > max {
			max = c.depth
		}
	}
	return max + 1
}

func (s *Server) descendantsLocked() int {
	total := 0
	for _, c := range s.children {
		total += c.descendants + 1
	}
	return total
}

// childRedirectsLocked snapshots the children as redirect infos (with
// branch record counts), for summary reports and replica fallbacks.
// Callers hold s.mu.
func (s *Server) childRedirectsLocked() []wire.RedirectInfo {
	if len(s.children) == 0 {
		return nil
	}
	out := make([]wire.RedirectInfo, 0, len(s.children))
	for _, c := range s.children {
		ri := wire.RedirectInfo{ID: c.id, Addr: c.addr}
		if c.branch != nil {
			ri.Records = c.branch.Records
		}
		out = append(out, ri)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// reportToParent sends the branch summary (with depth/descendant counts
// piggybacked) up the hierarchy.
//
// Change-driven path: once the parent has proven it speaks wire v3 the
// report carries the branch content version, and while the parent keeps
// confirming it holds the current version the summary payload is dropped
// entirely — a version-only report still refreshes liveness and branch
// shape but moves ~30 bytes instead of the full summary. Anti-entropy
// rounds, a version mismatch (parent asked NeedFull), or any content
// change switch back to full reports.
func (s *Server) reportToParent() {
	delta := !s.cfg.DisableDeltaDissemination
	fullRound := delta && s.aggRound.Load()%s.cfg.antiEntropyEvery() == 0
	s.mu.Lock()
	parentAddr := s.parentAddr
	branch := s.branchSummary
	depth := s.subtreeDepthLocked()
	desc := s.descendantsLocked()
	kids := s.childRedirectsLocked()
	parentV3 := s.parentV3
	parentAdaptive := s.parentAdaptive
	haveVersion := s.parentHaveVersion
	needFull := s.parentNeedFull
	stamp := s.epochEnabled() && s.parentEpochCapable
	s.mu.Unlock()
	if parentAddr == "" || branch == nil {
		return
	}
	// Respond in kind (wire v6): adaptive-geometry or condensed branches
	// go up as-is only once the parent proved the capability; until then
	// the report carries the branch flattened to the uniform base
	// geometry. Suppression and the parent's HaveVersion acks track the
	// version of whichever variant is actually sent.
	adaptive := s.cfg.adaptiveOn()
	sendSum := branch
	if adaptive && !parentAdaptive {
		sendSum = s.flattenForLegacy(branch)
	}
	report := &wire.SummaryReport{
		Depth:       depth,
		Descendants: desc,
		Children:    kids,
	}
	if delta && parentV3 {
		report.Version = sendSum.Version
	}
	suppress := delta && parentV3 && !needFull && !fullRound &&
		sendSum.Version != 0 && haveVersion == sendSum.Version
	if suppress {
		s.mx.reportsSuppressed.Inc()
	} else {
		report.Summary = wire.FromSummary(sendSum)
	}
	msg := &wire.Message{
		Kind:   wire.KindSummaryReport,
		From:   s.cfg.ID,
		Addr:   s.cfg.Addr,
		Report: report,
	}
	if adaptive && parentAdaptive {
		// The flag both keeps the parent's capability record warm and is
		// only legal here: it forces a v6 envelope, which an unproven
		// parent might not decode.
		msg.Adaptive = true
	}
	if stamp {
		s.stampEpoch(msg)
	}
	rep, err := s.tr.Call(parentAddr, msg)
	if err != nil || wire.RemoteError(rep) != nil {
		s.noteParentMiss(missReport)
		return
	}
	s.noteParentOK()
	s.observeEpoch(rep.Epoch)
	if (delta && rep.Ack != nil) || rep.Epoch != 0 {
		s.mu.Lock()
		if s.parentAddr == parentAddr { // parent may have changed mid-flight
			if s.epochEnabled() && rep.Epoch != 0 && rep.Epoch >= s.parentEpoch {
				s.parentEpochCapable = true
				s.advanceRelEpochLocked(&s.parentEpoch, rep.Epoch)
			}
			if delta && rep.Ack != nil {
				s.parentV3 = true
				switch {
				case rep.Ack.NeedFull:
					s.parentNeedFull = true
					s.parentHaveVersion = 0
				case rep.Ack.HaveVersion != 0:
					s.parentHaveVersion = rep.Ack.HaveVersion
					s.parentNeedFull = false
				}
			}
		}
		s.mu.Unlock()
	}
}

// pushReplicas distributes overlay state to every child: each sibling's
// branch summary, this server's own branch+local (ancestor push), and all
// replicas this server holds (sibling replicas become the child's
// ancestor-sibling replicas; ancestor replicas stay ancestors). After L
// rounds every server holds exactly the paper's replica set.
//
// All pushes for one child travel in a single KindReplicaBatch message, so
// a tick costs one call per child rather than one per (child × replica) —
// the overlay-maintenance traffic the paper identifies as ROADS' dominant
// overhead. Each push DTO is encoded once and shared across the per-child
// batches. DisableReplicaBatch restores the per-push calls.
//
// Change-driven path (batched mode only): a child that attached AckInfo
// to a batch ack is delta-capable; full pushes to it carry the origin's
// branch version (via a per-child stamped copy, so the shared DTO stays
// unversioned for legacy children), and the acked version per (child,
// origin) is tracked. While the child holds the current version, the
// entry ships version-only — origin identity, level and version, no
// summaries — which renews the replica's TTL for a few dozen bytes. A
// NeedFullOrigins ack or the periodic anti-entropy round downgrades the
// affected entries to full.
func (s *Server) pushReplicas() {
	delta := !s.cfg.DisableDeltaDissemination && !s.cfg.DisableReplicaBatch
	fullRound := delta && s.aggRound.Load()%s.cfg.antiEntropyEvery() == 0
	// Snapshot under the lock: childState fields are mutated in place by
	// summary reports, so copy the values; summary objects themselves are
	// replaced wholesale on update and never mutated after publish.
	type childSnap struct {
		id, addr string
		branch   *summary.Summary
		kids     []wire.RedirectInfo
		capable  bool
		epochCap bool
		adaptCap bool
		acked    map[string]uint64
	}
	adaptive := s.cfg.adaptiveOn()
	s.mu.Lock()
	children := make([]childSnap, 0, len(s.children))
	for _, c := range s.children {
		cs := childSnap{id: c.id, addr: c.addr, branch: c.branch, kids: c.kids,
			epochCap: s.epochEnabled() && c.epochCapable,
			adaptCap: adaptive && c.adaptiveCapable}
		if delta && c.deltaCapable {
			cs.capable = true
			cs.acked = make(map[string]uint64, len(c.acked))
			for o, v := range c.acked {
				cs.acked[o] = v
			}
		}
		children = append(children, cs)
	}
	sort.Slice(children, func(i, j int) bool { return children[i].id < children[j].id })
	// Sibling-push versions come from the childrens' stamped reports (0
	// from pre-v3 children, which disables delta for those entries).
	sibVersion := make([]uint64, len(children))
	for i := range children {
		if c, ok := s.children[children[i].id]; ok {
			sibVersion[i] = c.version
		}
	}
	ownBranch := s.branchSummary
	ownLocal := s.localSummary
	reps := make([]*replicaState, 0, len(s.replicas))
	for _, r := range s.replicas {
		reps = append(reps, r)
	}
	s.mu.Unlock()
	if len(children) == 0 {
		return
	}

	// Build every push DTO once; the per-child batches share them. The
	// shared DTOs stay unversioned — capable children get shallow stamped
	// copies, so a legacy child never sees a v3 payload. Each entry keeps
	// its source summaries so a legacy (pre-v6) variant — every summary
	// flattened to the uniform base geometry — can be built lazily, at
	// most once per tick, when some child has not proven the adaptive
	// capability. Native and flattened variants carry their own content
	// versions, so version-only suppression tracks exactly what each
	// child holds.
	type pushEntry struct {
		p             *wire.ReplicaPush
		ver           uint64
		branch, local *summary.Summary
		flat          *wire.ReplicaPush
		flatVer       uint64
		flatBuilt     bool
	}
	// variant picks the form child gets: native for adaptive-capable
	// children and for entries that are legacy-safe anyway; otherwise the
	// flattened copy. A nil push means the entry cannot be expressed for
	// this child (flatten failed) and is skipped.
	variant := func(e *pushEntry, adaptCap bool) (*wire.ReplicaPush, uint64) {
		if adaptCap || (!needsFlatten(e.branch) && !needsFlatten(e.local)) {
			return e.p, e.ver
		}
		if !e.flatBuilt {
			e.flatBuilt = true
			fb, err := e.branch.FlattenTo(s.cfg.Summary)
			if err != nil {
				s.noteSummaryError(err)
			} else {
				fp := *e.p // shallow: identity/level/fallback fields
				fp.Branch = wire.FromSummary(fb)
				fp.Version = 0
				if e.local != nil {
					fl, lerr := e.local.FlattenTo(s.cfg.Summary)
					if lerr != nil {
						s.noteSummaryError(lerr)
						fb = nil
					} else {
						fp.Local = wire.FromSummary(fl)
					}
				}
				if fb != nil {
					e.flat, e.flatVer = &fp, fb.Version
				}
			}
		}
		if e.flat == nil {
			return nil, 0
		}
		return e.flat, e.flatVer
	}
	// Sibling branches: distance 1 from the child.
	sibPush := make([]*pushEntry, len(children))
	for i, sib := range children {
		if sib.branch == nil {
			continue
		}
		sibPush[i] = &pushEntry{
			p: &wire.ReplicaPush{
				OriginID:   sib.id,
				OriginAddr: sib.addr,
				Branch:     wire.FromSummary(sib.branch),
				Level:      1,
				Fallbacks:  sib.kids,
			},
			ver:    sibVersion[i],
			branch: sib.branch,
		}
	}
	// Self as ancestor (branch + local piggyback): distance 1.
	var ancestor *pushEntry
	if ownBranch != nil {
		ancestor = &pushEntry{
			p: &wire.ReplicaPush{
				OriginID:   s.cfg.ID,
				OriginAddr: s.cfg.Addr,
				Branch:     wire.FromSummary(ownBranch),
				Local:      wire.FromSummary(ownLocal),
				Ancestor:   true,
				Level:      1,
			},
			ver:    ownBranch.Version,
			branch: ownBranch,
			local:  ownLocal,
		}
	}
	// Forward everything this server replicates (its siblings and
	// ancestors become the child's ancestor-siblings and ancestors, one
	// level further away).
	forwarded := make([]*pushEntry, 0, len(reps))
	for _, r := range reps {
		p := &wire.ReplicaPush{
			OriginID:   r.originID,
			OriginAddr: r.originAddr,
			Branch:     wire.FromSummary(r.branch),
			Ancestor:   r.ancestor,
			Level:      r.level + 1,
			Fallbacks:  r.fallbacks,
		}
		e := &pushEntry{p: p, ver: r.version, branch: r.branch}
		if r.ancestor && r.local != nil {
			p.Local = wire.FromSummary(r.local)
			e.local = r.local
		}
		forwarded = append(forwarded, e)
	}

	type sentEntry struct {
		origin  string
		version uint64
	}
	for i, child := range children {
		pushes := make([]*wire.ReplicaPush, 0, len(children)+len(forwarded))
		var sent []sentEntry
		// appendEntry adds one origin's entry: version-only when the child
		// already confirmed holding this version, a stamped full copy when
		// the child is capable, the shared unversioned DTO otherwise. The
		// payload and version are the child's variant (native vs.
		// flattened), so what is acked is what was actually held.
		appendEntry := func(e *pushEntry) {
			p, ver := variant(e, child.adaptCap)
			if p == nil {
				return
			}
			switch {
			case child.capable && ver != 0 && !fullRound && child.acked[p.OriginID] == ver:
				pushes = append(pushes, &wire.ReplicaPush{
					OriginID:   p.OriginID,
					OriginAddr: p.OriginAddr,
					Ancestor:   p.Ancestor,
					Level:      p.Level,
					Version:    ver,
				})
				s.mx.pushDelta.Inc()
			case child.capable && ver != 0:
				stamped := *p // shallow: shares the summary DTOs
				stamped.Version = ver
				pushes = append(pushes, &stamped)
				s.mx.pushFull.Inc()
			default:
				pushes = append(pushes, p)
				if delta {
					s.mx.pushFull.Inc()
				}
			}
			if child.capable {
				sent = append(sent, sentEntry{origin: p.OriginID, version: ver})
			}
		}
		for j, e := range sibPush {
			if j != i && e != nil {
				appendEntry(e)
			}
		}
		if ancestor != nil {
			appendEntry(ancestor)
		}
		for _, e := range forwarded {
			appendEntry(e)
		}
		if len(pushes) == 0 {
			continue
		}
		if s.cfg.DisableReplicaBatch {
			for _, p := range pushes {
				msg := &wire.Message{Kind: wire.KindReplicaPush, From: s.cfg.ID, Addr: s.cfg.Addr, Replica: p}
				if child.epochCap {
					s.stampEpoch(msg)
				}
				_, _ = s.tr.Call(child.addr, msg)
			}
			continue
		}
		msg := &wire.Message{
			Kind:  wire.KindReplicaBatch,
			From:  s.cfg.ID,
			Addr:  s.cfg.Addr,
			Batch: &wire.ReplicaBatch{Pushes: pushes},
		}
		if child.epochCap {
			// A stamped push is what proves our v4 capability to the
			// child, authorizing it to stamp its heartbeats and reports.
			s.stampEpoch(msg)
		}
		if child.adaptCap {
			// Mirroring the epoch stamp one version up: a flagged batch is
			// what proves our v6 capability to the child, authorizing it to
			// report adaptive-geometry branches upward. Only proven-v6
			// children get the flag — it forces a v6 envelope.
			msg.Adaptive = true
		}
		rep, err := s.tr.Call(child.addr, msg)
		if err != nil || rep == nil {
			continue
		}
		// A stamped batch ack is the child's v4 proof (batch-ack contents
		// are ignored by senders that cannot decode them, so children
		// stamp theirs unconditionally); AckInfo is the v3 delta proof.
		epochProof := s.epochEnabled() && rep.Epoch != 0
		if epochProof {
			s.observeEpoch(rep.Epoch)
		}
		deltaAck := delta && rep.Ack != nil
		// An Adaptive-flagged ack is the child's v6 proof (same
		// justification as the epoch stamp: senders that cannot decode the
		// ack ignore it entirely).
		adaptAck := adaptive && rep.Adaptive
		if !epochProof && !deltaAck && !adaptAck {
			continue // legacy child: no bookkeeping
		}
		s.mu.Lock()
		if c, ok := s.children[child.id]; ok {
			if adaptAck {
				c.adaptiveCapable = true
			}
			if epochProof {
				c.epochCapable = true
				if rep.Epoch > c.epoch {
					// Plain max, not the fenced advance: a late ack from
					// before the child's recovery is a benign race here,
					// not an accepted stale mutation.
					c.epoch = rep.Epoch
				}
			}
			if deltaAck {
				// Record what the child now holds, minus anything it
				// explicitly asked refreshed.
				c.deltaCapable = true
				if c.acked == nil {
					c.acked = make(map[string]uint64, len(sent)+len(pushes))
				}
				for _, e := range sent {
					if e.version != 0 {
						c.acked[e.origin] = e.version
					}
				}
				// A not-yet-capable child acked full unversioned entries; it
				// holds their content but no version to confirm against, so
				// nothing is recorded for it until the next stamped round.
				for _, o := range rep.Ack.NeedFullOrigins {
					delete(c.acked, o)
				}
			}
		}
		s.mu.Unlock()
	}
}

// pruneDeadChildren drops children that have not reported within the
// failure window; their subtrees rejoin on their own via root paths. The
// window is floored so heavily loaded (or instrumented) processes whose
// message handling runs slower than the tick never mistake slowness for
// death.
func (s *Server) pruneDeadChildren() {
	deadline := time.Duration(s.cfg.HeartbeatMiss) * s.cfg.HeartbeatEvery
	if deadline < 2*time.Second {
		deadline = 2 * time.Second
	}
	now := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	changed := false
	for id, c := range s.children {
		if c.lastSeen.IsZero() {
			c.lastSeen = now
			continue
		}
		if now.Sub(c.lastSeen) > deadline {
			delete(s.children, id)
			s.childEpoch++ // its branch leaves the merged summary
			changed = true
		}
	}
	if changed {
		s.publishSnapshotLocked()
	}
}

// pruneStaleReplicas ages out overlay replicas that have not refreshed
// recently — replicas are soft state, so a crashed origin's summary stops
// attracting redirects after its TTL. The window is generous (propagation
// takes one aggregation tick per hierarchy level).
func (s *Server) pruneStaleReplicas() {
	ttl := time.Duration(4*s.cfg.HeartbeatMiss) * s.cfg.AggregateEvery
	if floor := s.cfg.replicaTTLFloor(); ttl < floor {
		// Floor (configurable via Config.ReplicaTTLFloor): a full push
		// round must always fit inside the TTL, even when encoding runs
		// far slower than the tick (loaded hosts, race detector);
		// otherwise replicas flap and coverage never settles.
		ttl = floor
	}
	now := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	changed := false
	for id, r := range s.replicas {
		if r.received.IsZero() {
			r.received = now
			continue
		}
		if now.Sub(r.received) > ttl {
			delete(s.replicas, id)
			changed = true
		}
	}
	if changed {
		s.publishSnapshotLocked()
	}
}

// sendHeartbeat pings the parent; the reply refreshes the root path and
// the sibling list (for root election). The reply is applied only if the
// parent is still the one the heartbeat was sent to (a slow reply from a
// just-replaced parent must not overwrite post-rejoin ancestry) and only
// if it is not fenced (stamped with an epoch below the parent's recorded
// one — a reply from before the parent's last recovery).
func (s *Server) sendHeartbeat() {
	s.mu.Lock()
	parentAddr := s.parentAddr
	idle := s.tx == txNone
	stamp := s.epochEnabled() && s.parentEpochCapable
	s.mu.Unlock()
	if parentAddr == "" {
		// Root: its root path is itself — but never clobber the path
		// while a recovery or merge is in flight; the failure handler
		// still needs the pre-failure ancestry.
		if idle {
			s.mu.Lock()
			if s.tx == txNone && s.parentAddr == "" {
				s.rootPath = []string{s.cfg.ID}
				s.rootPathAddrs = []string{s.cfg.Addr}
				s.publishSnapshotLocked()
			}
			s.mu.Unlock()
		}
		return
	}
	hb := &wire.Message{
		Kind: wire.KindHeartbeat,
		From: s.cfg.ID,
		Addr: s.cfg.Addr,
	}
	if stamp {
		s.stampEpoch(hb)
	}
	rep, err := s.tr.Call(parentAddr, hb)
	if err != nil || wire.RemoteError(rep) != nil || rep.Heartbeat == nil {
		s.noteParentMiss(missHeartbeat)
		return
	}
	s.noteParentOK()
	s.observeEpoch(rep.Epoch)
	s.mu.Lock()
	if s.parentAddr != parentAddr {
		// The parent changed while the call was in flight: this reply
		// describes the dead relationship's ancestry, not the new one's.
		s.mu.Unlock()
		return
	}
	if s.epochEnabled() && rep.Epoch != 0 {
		if rep.Epoch < s.parentEpoch {
			s.mu.Unlock()
			s.mx.fenced.Inc()
			return // stale regime: fenced
		}
		s.parentEpochCapable = true
		s.advanceRelEpochLocked(&s.parentEpoch, rep.Epoch)
	}
	s.rootPath = append(append([]string(nil), rep.Heartbeat.RootPath...), s.cfg.ID)
	s.rootPathAddrs = append(append([]string(nil), rep.Heartbeat.PathAddrs...), s.cfg.Addr)
	if rep.QueryRep != nil {
		s.siblingsOfMe = rep.QueryRep.Redirects
	}
	s.rememberPathLocked()
	s.publishSnapshotLocked()
	s.mu.Unlock()
}

// missSource discriminates which loop observed a parent miss. The report
// and heartbeat loops tick independently; counting their misses in one
// shared bucket reached HeartbeatMiss ~2× faster than configured, so each
// source counts alone and failure is declared when either one reaches the
// threshold by itself.
type missSource int

const (
	missHeartbeat missSource = iota
	missReport
)

func (s *Server) noteParentMiss(src missSource) {
	s.mu.Lock()
	switch src {
	case missHeartbeat:
		s.parentMisses++
	case missReport:
		s.parentReportMisses++
	}
	misses := s.parentMisses
	if s.parentReportMisses > misses {
		misses = s.parentReportMisses
	}
	var plan *rejoinPlan
	if misses >= s.cfg.HeartbeatMiss && s.tx == txNone && s.parentAddr != "" {
		plan = s.planRejoinLocked()
	}
	s.mu.Unlock()
	if plan != nil {
		s.spawnRecovery(plan)
	}
}

func (s *Server) noteParentOK() {
	s.mu.Lock()
	s.parentMisses = 0
	s.parentReportMisses = 0
	s.mu.Unlock()
}

// rejoinPlan captures, at the moment a parent failure is detected, the
// state a recovery needs: which parent died, the surviving ancestry, and
// the sibling list for root election. Capturing synchronously under the
// lock matters — asynchronous handlers raced with the heartbeat loop,
// which resets a parentless server's root path to itself, and a clobbered
// path made orphans elect themselves root (hierarchy split).
type rejoinPlan struct {
	deadID        string
	ancestors     []string // addresses, nearest (grandparent) first
	parentWasRoot bool
	siblings      []wire.RedirectInfo
}

// planRejoinLocked builds the plan, begins the recovery transaction, bumps
// the membership epoch (fencing everything still loyal to the dead
// parent's regime), and clears the dead parent. Callers hold s.mu and must
// have checked s.tx == txNone.
func (s *Server) planRejoinLocked() *rejoinPlan {
	p := &rejoinPlan{
		deadID:   s.parentID,
		siblings: append([]wire.RedirectInfo(nil), s.siblingsOfMe...),
	}
	// The root path is [root ... grandparent parent self]; the dead
	// parent was the root exactly when nothing sits above it.
	path := s.rootPath
	addrs := s.rootPathAddrs
	p.parentWasRoot = len(path) <= 2
	for i := len(path) - 3; i >= 0 && i < len(addrs); i-- {
		p.ancestors = append(p.ancestors, addrs[i])
	}
	// The dying ancestry is exactly what split-brain probing needs later.
	s.rememberPathLocked()
	s.tx = txRecovery
	if s.epochEnabled() {
		s.epoch.Add(1)
	}
	s.parentID = ""
	s.parentAddr = ""
	s.parentMisses = 0
	s.parentReportMisses = 0
	s.parentV3 = false
	s.parentHaveVersion = 0
	s.parentNeedFull = false
	s.parentAdaptive = false
	s.parentEpoch = 0
	s.parentEpochCapable = false
	s.publishSnapshotLocked()
	s.mx.parentFailovers.Inc()
	return p
}
