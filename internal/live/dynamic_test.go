package live

import (
	"testing"
	"time"

	"roads/internal/policy"
	"roads/internal/query"
	"roads/internal/record"
	"roads/internal/transport"
)

// TestDynamicResourceUpdates exercises the soft-state story for dynamic
// resources (paper §III-B: "many resources are dynamic, thus we need to
// continuously update the corresponding resource records and summaries"):
// an owner changes its records at runtime, and within a few aggregation
// ticks the new resource becomes discoverable from a remote server while
// the retired one stops matching.
func TestDynamicResourceUpdates(t *testing.T) {
	schema := record.DefaultSchema(2)
	tr := transport.NewChan()
	cl, err := StartCluster(tr, ClusterConfig{N: 3, Schema: schema, MaxChildren: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()

	mk := func(id string, v float64) *record.Record {
		r := record.New(schema, id, "own")
		r.SetNum(0, v)
		r.SetNum(1, v)
		return r
	}
	o := policy.NewOwner("own", schema, nil)
	o.SetRecords([]*record.Record{mk("old", 0.2)})
	if err := cl.AttachOwner(2, o); err != nil {
		t.Fatal(err)
	}
	if err := cl.WaitConverged(1, convergeTimeout); err != nil {
		t.Fatal(err)
	}

	client := NewClient(tr, "t")
	qOld := query.New("q-old", query.NewRange("a0", 0.15, 0.25))
	qNew := query.New("q-new", query.NewRange("a0", 0.75, 0.85))

	recs, _, err := client.Resolve(cl.Servers[0].Addr(), qOld)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].ID != "old" {
		t.Fatalf("precondition: old record should be discoverable, got %v", recs)
	}

	// The resource changes: the owner replaces its record set.
	o.SetRecords([]*record.Record{mk("new", 0.8)})

	// Within a few ticks the summaries refresh along the hierarchy and the
	// overlay; the new record becomes discoverable from a remote server.
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		recs, _, err = client.Resolve(cl.Servers[0].Addr(), qNew.Clone())
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) == 1 && recs[0].ID == "new" {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if len(recs) != 1 || recs[0].ID != "new" {
		t.Fatalf("new record not discoverable after refresh: %v", recs)
	}

	// The retired record no longer matches (the owner answers from its
	// current records immediately; the summaries follow).
	recs, _, err = client.Resolve(cl.Servers[0].Addr(), qOld.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("retired record still returned: %v", recs)
	}
}

// TestOwnerAttachedAtRuntime attaches a brand-new owner to a running
// cluster and checks it becomes discoverable.
func TestOwnerAttachedAtRuntime(t *testing.T) {
	cl, w := startWorkloadCluster(t, 4, 10, 60)
	client := NewClient(cl.Tr, "t")

	schema := w.Schema
	o := policy.NewOwner("latecomer", schema, nil)
	r := record.New(schema, "late-r1", "latecomer")
	for j := 0; j < schema.NumAttrs(); j++ {
		r.SetNum(j, 0.999)
	}
	o.SetRecords([]*record.Record{r})
	if err := cl.AttachOwner(3, o); err != nil {
		t.Fatal(err)
	}

	q := query.New("q", query.NewRange("a0", 0.99, 1.0))
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		recs, _, err := client.Resolve(cl.Servers[0].Addr(), q.Clone())
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, rec := range recs {
			if rec.ID == "late-r1" {
				found = true
			}
		}
		if found {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal("late owner's record never became discoverable")
}
