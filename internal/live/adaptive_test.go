package live

import (
	"fmt"
	"sync"
	"testing"

	"roads/internal/policy"
	"roads/internal/query"
	"roads/internal/record"
	"roads/internal/transport"
	"roads/internal/wire"
)

// adaptiveCluster builds a parked-loop root with two leaf children over
// tr, with coarse 8-bucket summaries and a replan every aggregation round
// so tests drive the feedback loop deterministically via driveRound. The
// first child hosts nHot records clustered in a0's lowest 1/16th — narrow
// queries just above the cluster match the coarse bucket but no records,
// the exact false-positive shape adaptation exists to kill. The second
// child hosts one record at a0=0.9 so sibling pushes flow.
func adaptiveCluster(t *testing.T, tr transport.Transport, nHot int, mut func(id string, c *Config)) (root, hot, cold *Server) {
	t.Helper()
	schema := record.DefaultSchema(4)
	mk := func(id string) *Server {
		return deltaServerCfg(t, tr, id, schema, func(c *Config) {
			c.Summary.Buckets = 8
			c.ReplanEvery = 1
			c.AntiEntropyEvery = 1
			if mut != nil {
				mut(id, c)
			}
		})
	}
	root, hot, cold = mk("root"), mk("hot"), mk("cold")

	oh := policy.NewOwner("own-hot", schema, nil)
	recs := make([]*record.Record, nHot)
	for i := range recs {
		r := record.New(schema, fmt.Sprintf("hot-r%d", i), oh.ID)
		r.SetNum(0, 0.003*float64(i)) // all below 0.0625 = one 16-bucket cell
		for a := 1; a < 4; a++ {
			r.SetNum(a, 0.5)
		}
		recs[i] = r
	}
	oh.SetRecords(recs)
	if err := hot.AttachOwner(oh); err != nil {
		t.Fatal(err)
	}

	oc := policy.NewOwner("own-cold", schema, nil)
	r := record.New(schema, "cold-r0", oc.ID)
	r.SetNum(0, 0.9)
	for a := 1; a < 4; a++ {
		r.SetNum(a, 0.5)
	}
	oc.SetRecords([]*record.Record{r})
	if err := cold.AttachOwner(oc); err != nil {
		t.Fatal(err)
	}

	for _, c := range []*Server{hot, cold} {
		if err := c.Join(root.Addr()); err != nil {
			t.Fatalf("%s join: %v", c.ID(), err)
		}
	}
	return root, hot, cold
}

// fpQueries drives n distinct narrow-range queries through the root that
// match the hot child's coarse bucket 0 but none of its records, and
// returns how many produced zero records (all should).
func fpQueries(t *testing.T, tr transport.Transport, root *Server, n, gen int) int {
	t.Helper()
	cli := NewClient(tr, "probe")
	empties := 0
	for i := 0; i < n; i++ {
		lo := 0.07 + 0.003*float64(i)
		q := query.New(fmt.Sprintf("fp-%d-%d", gen, i), query.NewRange("a0", lo, 0.124))
		recs, _, err := cli.Resolve(root.Addr(), q)
		if err != nil {
			t.Fatalf("fp query %d: %v", i, err)
		}
		if len(recs) == 0 {
			empties++
		}
	}
	return empties
}

// TestAdaptiveFeedbackKillsFPDescents is the end-to-end tentpole test:
// false-positive descents heat the attribute they routed on, the next
// replan refines that attribute's resolution, the refined summary reports
// up natively (the parent proved wire-v6), and the same query shape stops
// descending — while genuine matches keep full recall throughout.
func TestAdaptiveFeedbackKillsFPDescents(t *testing.T) {
	tr := transport.NewChan()
	root, hot, cold := adaptiveCluster(t, tr, 20, nil)

	// Negotiation warm-up: child acks flag capability, the root's next
	// pushes run flagged, reports turn native after that.
	for i := 0; i < 4; i++ {
		driveRound(hot, cold, root)
		driveRound(root)
	}
	if got := root.CoveredRecords(); got != 21 {
		t.Fatalf("root covers %d records before queries, want 21", got)
	}

	if got := fpQueries(t, tr, root, 12, 0); got != 12 {
		t.Fatalf("%d/12 probe queries were empty; the coarse baseline must redirect all of them", got)
	}
	di := hot.AdaptiveInfo()
	if !di.Enabled {
		t.Fatal("adaptive summaries must be on by default")
	}
	if di.FPDescents == 0 {
		t.Fatal("empty descents were not counted as false positives")
	}

	// Fold the heat: replan on the hot child, re-export, report up, and
	// let the root push the refreshed state around.
	for i := 0; i < 3; i++ {
		driveRound(hot, cold, root)
		driveRound(root)
	}
	di = hot.AdaptiveInfo()
	if di.Replans == 0 {
		t.Fatal("heated child never replanned")
	}
	if di.PlanDeviation == 0 {
		t.Fatal("replan left the geometry at the static base despite concentrated heat")
	}

	// The same query shape must now stop at the root: the refined a0
	// histogram separates the occupied cell from the probed range.
	before := hot.AdaptiveInfo().FPDescents
	if got := fpQueries(t, tr, root, 12, 1); got != 12 {
		t.Fatalf("%d/12 post-replan probes returned records; they target an empty range", got)
	}
	after := hot.AdaptiveInfo().FPDescents
	if after != before {
		t.Fatalf("refined summary still drew %d false-positive descents", after-before)
	}

	// Recall check: a genuine match still returns the full cluster.
	cli := NewClient(tr, "probe")
	recs, _, err := cli.Resolve(root.Addr(), query.New("real", query.NewRange("a0", 0, 0.06)))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 20 {
		t.Fatalf("adaptive refinement lost recall: %d records, want 20", len(recs))
	}
}

// TestAdaptiveDisabledStaticBaseline pins the escape hatch: with
// DisableAdaptiveSummaries the same workload keeps the static geometry —
// no replans, zero plan deviation — so false positives persist, while the
// descent counter still measures them for the baseline comparison.
func TestAdaptiveDisabledStaticBaseline(t *testing.T) {
	tr := transport.NewChan()
	root, hot, cold := adaptiveCluster(t, tr, 20, func(_ string, c *Config) {
		c.DisableAdaptiveSummaries = true
	})
	for i := 0; i < 4; i++ {
		driveRound(hot, cold, root)
		driveRound(root)
	}

	fpQueries(t, tr, root, 12, 0)
	before := hot.AdaptiveInfo()
	if before.Enabled {
		t.Fatal("DisableAdaptiveSummaries left adaptation enabled")
	}
	if before.FPDescents == 0 {
		t.Fatal("static baseline must still count false-positive descents")
	}

	for i := 0; i < 3; i++ {
		driveRound(hot, cold, root)
		driveRound(root)
	}
	di := hot.AdaptiveInfo()
	if di.Replans != 0 || di.PlanDeviation != 0 {
		t.Fatalf("static baseline replanned anyway: %d replans, deviation %d",
			di.Replans, di.PlanDeviation)
	}

	// The identical query shape keeps descending: nothing refined.
	fpQueries(t, tr, root, 12, 1)
	if after := hot.AdaptiveInfo().FPDescents; after <= before.FPDescents {
		t.Fatal("static geometry should keep drawing false-positive descents")
	}
	cli := NewClient(tr, "probe")
	recs, _, err := cli.Resolve(root.Addr(), query.New("real", query.NewRange("a0", 0, 0.06)))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 20 {
		t.Fatalf("static baseline lost recall: %d records, want 20", len(recs))
	}
}

// verSniffer wraps a transport and records, per destination address, every
// wire version byte its requests encode to. The in-process Chan transport
// round-trips real codec bytes but exposes none of them, so the sniffer
// re-encodes each outgoing message — Encode is deterministic, so the
// recorded byte is exactly what crossed the wire.
type verSniffer struct {
	transport.Transport
	mu   sync.Mutex
	seen map[string]map[byte]int
}

func newVerSniffer(inner transport.Transport) *verSniffer {
	return &verSniffer{Transport: inner, seen: make(map[string]map[byte]int)}
}

func (v *verSniffer) record(addr string, req *wire.Message) {
	data, err := wire.Encode(req)
	if err != nil || len(data) < 2 {
		return
	}
	v.mu.Lock()
	if v.seen[addr] == nil {
		v.seen[addr] = make(map[byte]int)
	}
	v.seen[addr][data[1]]++
	v.mu.Unlock()
}

func (v *verSniffer) Call(addr string, req *wire.Message) (*wire.Message, error) {
	v.record(addr, req)
	return v.Transport.Call(addr, req)
}

// versions returns how many requests to addr used a version byte
// satisfying pred.
func (v *verSniffer) versions(addr string, pred func(byte) bool) int {
	v.mu.Lock()
	defer v.mu.Unlock()
	n := 0
	for ver, c := range v.seen[addr] {
		if pred(ver) {
			n += c
		}
	}
	return n
}

// TestAdaptiveMixedVersionInterop is the v5/v6 interop regression: an
// adaptive root and child negotiate up to wire v6 and exchange native
// adaptive summaries, while a legacy sibling (adaptation disabled, so it
// never flags capability — the stand-in for a pre-v6 build) keeps seeing
// only legacy-versioned, flattened traffic. Queries through either entry
// keep full recall across the boundary.
func TestAdaptiveMixedVersionInterop(t *testing.T) {
	tr := newVerSniffer(transport.NewChan())
	// The "cold" child is built as a pre-v6 peer: adaptation disabled, so
	// it never flags capability — the stand-in for a legacy build.
	root, hot, legacy := adaptiveCluster(t, tr, 20, func(id string, c *Config) {
		if id == "cold" {
			c.DisableAdaptiveSummaries = true
		}
	})

	for i := 0; i < 4; i++ {
		driveRound(hot, legacy, root)
		driveRound(root)
	}
	// Heat the adaptive child so its native summaries carry a real plan
	// (Mode != 0): only then does v6 traffic actually appear.
	fpQueries(t, tr, root, 12, 0)
	for i := 0; i < 4; i++ {
		driveRound(hot, legacy, root)
		driveRound(root)
	}
	if di := hot.AdaptiveInfo(); di.Replans == 0 || di.PlanDeviation == 0 {
		t.Fatalf("adaptive child never refined: %+v", di)
	}

	// The proven pair speaks v6: flagged pushes root→hot, and — once the
	// parent proved itself — native Mode-carrying reports hot→root.
	if tr.versions(hot.Addr(), func(b byte) bool { return b >= 6 }) == 0 {
		t.Fatal("no v6 request ever reached the adaptive child; capability negotiation failed")
	}
	if tr.versions(root.Addr(), func(b byte) bool { return b >= 6 }) == 0 {
		t.Fatal("the adaptive child never sent the root a v6 request")
	}
	// The legacy child must never see a v6 byte: every summary pushed to
	// it — including the adaptive sibling's refined branch — arrives
	// flattened to the uniform base geometry (Mode 0 never stamps v6).
	if n := tr.versions(legacy.Addr(), func(b byte) bool { return b >= 6 }); n != 0 {
		t.Fatalf("%d wire-v6 requests reached the legacy peer", n)
	}
	if tr.versions(legacy.Addr(), func(b byte) bool { return b < 6 }) == 0 {
		t.Fatal("no legacy-versioned traffic reached the legacy peer at all")
	}

	// Full recall through both entries, across the version boundary.
	for _, entry := range []*Server{root, legacy} {
		cli := NewClient(tr, "probe-"+entry.ID())
		recs, _, err := cli.Resolve(entry.Addr(), query.New("all-"+entry.ID(), query.NewRange("a0", 0, 1)))
		if err != nil {
			t.Fatalf("entry %s: %v", entry.ID(), err)
		}
		if len(recs) != 21 {
			t.Fatalf("entry %s resolved %d records, want 21", entry.ID(), len(recs))
		}
	}
}
