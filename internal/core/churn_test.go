package core

import (
	"fmt"
	"math/rand"
	"testing"

	"roads/internal/query"
)

// TestChurnRecall injects server failures and measures query recall: with
// stale summaries (before the soft-state refresh) queries may redirect to
// dead branches, but after one Aggregate epoch recall over the surviving
// data must return to 100% — the soft-state resiliency story of §III-B.
func TestChurnRecall(t *testing.T) {
	sys, w := buildSystem(t, 48, 40)
	rng := rand.New(rand.NewSource(41))

	// Fail 8 random non-root servers.
	failed := make(map[int]bool)
	for len(failed) < 8 {
		i := rng.Intn(48)
		id := fmt.Sprintf("s%03d", i)
		if id == sys.Tree.Root().ID || failed[i] {
			continue
		}
		if err := sys.RemoveServer(id); err != nil {
			t.Fatal(err)
		}
		failed[i] = true
	}
	if err := sys.Tree.Validate(); err != nil {
		t.Fatal(err)
	}

	// Soft-state refresh: summaries regenerate over the healed hierarchy.
	if err := sys.Aggregate(); err != nil {
		t.Fatal(err)
	}

	queries, err := w.GenQueries(15, 3, 0.4, rng)
	if err != nil {
		t.Fatal(err)
	}
	survivors := func(q *query.Query) int {
		want := 0
		for i, recs := range w.PerNode {
			if failed[i] {
				continue
			}
			for _, r := range recs {
				if q.MatchRecord(r) {
					want++
				}
			}
		}
		return want
	}
	for qi, q := range queries {
		// Start from a surviving server.
		var start string
		for {
			i := rng.Intn(48)
			if !failed[i] {
				start = fmt.Sprintf("s%03d", i)
				break
			}
		}
		res, err := sys.ResolveAndRetrieve(q, start)
		if err != nil {
			t.Fatalf("query %d: %v", qi, err)
		}
		if want := survivors(q); len(res.Records) != want {
			t.Fatalf("query %d after churn: recall %d/%d", qi, len(res.Records), want)
		}
	}
}

// TestChurnRepeatedEpochs alternates failures and refresh epochs, checking
// the system never wedges and recall stays complete after each epoch.
func TestChurnRepeatedEpochs(t *testing.T) {
	sys, w := buildSystem(t, 30, 42)
	rng := rand.New(rand.NewSource(43))
	alive := make(map[int]bool)
	for i := 0; i < 30; i++ {
		alive[i] = true
	}
	for epoch := 0; epoch < 4; epoch++ {
		// Fail two random servers per epoch (never the current root).
		removed := 0
		for removed < 2 {
			i := rng.Intn(30)
			id := fmt.Sprintf("s%03d", i)
			if !alive[i] || id == sys.Tree.Root().ID {
				continue
			}
			if err := sys.RemoveServer(id); err != nil {
				t.Fatal(err)
			}
			alive[i] = false
			removed++
		}
		if err := sys.Aggregate(); err != nil {
			t.Fatalf("epoch %d aggregate: %v", epoch, err)
		}
		q, err := w.GenQuery(fmt.Sprintf("q%d", epoch), 2, 0.5, rng)
		if err != nil {
			t.Fatal(err)
		}
		want := 0
		for i, recs := range w.PerNode {
			if !alive[i] {
				continue
			}
			for _, r := range recs {
				if q.MatchRecord(r) {
					want++
				}
			}
		}
		res, err := sys.ResolveAndRetrieve(q, sys.Tree.Root().ID)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Records) != want {
			t.Fatalf("epoch %d: recall %d/%d", epoch, len(res.Records), want)
		}
	}
}
