package core

import (
	"fmt"
	"sort"

	"roads/internal/hierarchy"
	"roads/internal/netsim"
	"roads/internal/query"
)

// ScopeAll searches the entire hierarchy (the default for Resolve).
const ScopeAll = -1

// ResolveScoped answers a query like Resolve, but bounds the search scope
// to the branch of the start server's ancestor `scope` levels up:
//
//	scope 0  — only the start server's own subtree,
//	scope 1  — the parent's branch (own subtree + siblings),
//	scope k  — the branch of the k-th ancestor,
//	ScopeAll — the whole hierarchy.
//
// This is the paper's §III-C scope control: "each ancestor (or their
// siblings) of the starting server is one level higher in the hierarchy,
// providing more resources but requiring a longer search path — the client
// can choose one or several branches to start its queries." A narrower
// scope trades completeness for latency and traffic; it is exact within
// the chosen branch.
func (sys *System) ResolveScoped(q *query.Query, startID string, scope int) (*SearchResult, error) {
	start, ok := sys.servers[startID]
	if !ok {
		return nil, fmt.Errorf("core: unknown start server %q", startID)
	}
	if !q.Bound() {
		if err := q.Bind(sys.Schema); err != nil {
			return nil, err
		}
	}
	if scope == ScopeAll || scope >= start.Level() {
		return sys.Resolve(q, startID)
	}
	if scope < 0 {
		return nil, fmt.Errorf("core: invalid scope %d", scope)
	}
	if !sys.Cfg.OverlayEnabled && scope > 0 {
		return nil, fmt.Errorf("core: scoped search beyond the own subtree needs the overlay")
	}

	allowed := sys.scopedOrigins(start.node, scope)
	res := &SearchResult{}
	clientHost := start.Host

	contacted := map[string]bool{start.ID: true}
	pending := []visit{{server: start, arrival: 0, isStart: true}}
	for len(pending) > 0 {
		v := pending[0]
		pending = pending[1:]
		srv := v.server
		res.Contacted = append(res.Contacted, srv.ID)
		if v.arrival > res.Latency {
			res.Latency = v.arrival
		}
		if srv.failed {
			continue // stale redirect to a crashed server
		}
		targets := sys.matchingTargetsScoped(srv, q, contacted, v.isStart, allowed)
		if srv.localSummary != nil && q.MatchSummary(srv.localSummary) {
			res.Endpoints = append(res.Endpoints, srv.ID)
		}
		if len(targets) == 0 {
			continue
		}
		redirectAt := v.arrival + sys.Cfg.ProcessingDelay + sys.Sim.LatencyBetween(srv.Host, clientHost)
		respBytes := redirectHeaderBytes + redirectEntryBytes*len(targets)
		res.QueryBytes += int64(respBytes)
		sys.Sim.Account(netsim.Response, respBytes)
		for _, tgt := range targets {
			arrival := redirectAt + sys.Sim.LatencyBetween(clientHost, tgt.Host)
			res.QueryBytes += int64(q.SizeBytes())
			sys.Sim.Account(netsim.Query, q.SizeBytes())
			pending = append(pending, visit{server: tgt, arrival: arrival})
		}
	}
	sort.Strings(res.Endpoints)
	return res, nil
}

// scopedOrigins returns the overlay origins a scope-k search may redirect
// to from the start node: the siblings at each of the first k ancestor
// levels, plus those ancestors themselves (for their local data).
func (sys *System) scopedOrigins(n *hierarchy.Node, scope int) map[string]bool {
	allowed := make(map[string]bool)
	cur := n
	for level := 0; level < scope && cur.Parent != nil; level++ {
		for _, sib := range cur.Siblings() {
			allowed[sib.ID] = true
		}
		allowed[cur.Parent.ID] = true
		cur = cur.Parent
	}
	return allowed
}

// matchingTargetsScoped is matchingTargets restricted to the allowed
// overlay origins.
func (sys *System) matchingTargetsScoped(srv *Server, q *query.Query, contacted map[string]bool, isStart bool, allowed map[string]bool) []*Server {
	var out []*Server
	add := func(id string) {
		if contacted[id] {
			return
		}
		tgt, ok := sys.servers[id]
		if !ok {
			return
		}
		contacted[id] = true
		out = append(out, tgt)
	}
	for _, cid := range childIDs(srv.node) {
		if cs, ok := srv.childSummaries[cid]; ok && q.MatchSummary(cs) {
			add(cid)
		}
	}
	if isStart && len(srv.replicas) > 0 {
		ancestors := make(map[string]bool)
		for cur := srv.node.Parent; cur != nil; cur = cur.Parent {
			ancestors[cur.ID] = true
		}
		ids := make([]string, 0, len(srv.replicas))
		for oid := range srv.replicas {
			if allowed[oid] {
				ids = append(ids, oid)
			}
		}
		sort.Strings(ids)
		for _, oid := range ids {
			if ancestors[oid] {
				if ls := srv.ancestorLocal[oid]; ls != nil && q.MatchSummary(ls) {
					add(oid)
				}
				continue
			}
			if q.MatchSummary(srv.replicas[oid]) {
				add(oid)
			}
		}
	}
	return out
}

// SubtreeServers returns the IDs of all servers in the branch rooted at
// the start server's ancestor `scope` levels up — the exact coverage set
// of a scope-k search. Useful for tests and capacity planning.
func (sys *System) SubtreeServers(startID string, scope int) ([]string, error) {
	start, ok := sys.servers[startID]
	if !ok {
		return nil, fmt.Errorf("core: unknown server %q", startID)
	}
	anchor := start.node
	for i := 0; i < scope && anchor.Parent != nil; i++ {
		anchor = anchor.Parent
	}
	var out []string
	var walk func(n *hierarchy.Node)
	walk = func(n *hierarchy.Node) {
		out = append(out, n.ID)
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(anchor)
	sort.Strings(out)
	return out, nil
}
