package core

import (
	"fmt"
	"time"

	"roads/internal/hierarchy"
	"roads/internal/netsim"
	"roads/internal/policy"
	"roads/internal/summary"
)

// Aggregate runs one full soft-state refresh epoch:
//
//  1. every owner exports its summary to its attachment point,
//  2. branch summaries propagate bottom-up to the root (paper §III-B), and
//  3. if the overlay is enabled, branch summaries replicate top-down and
//     sideways so each server holds its siblings', ancestors', and
//     ancestors'-siblings' summaries (paper §III-C).
//
// All messages are accounted as update traffic on the simulator. The method
// is deterministic and idempotent for unchanged data.
func (sys *System) Aggregate() error {
	if sys.Tree == nil {
		return fmt.Errorf("core: no servers")
	}
	if err := sys.refreshLocalSummaries(); err != nil {
		return err
	}
	if err := sys.aggregateBranch(sys.Tree.Root()); err != nil {
		return err
	}
	if sys.Cfg.OverlayEnabled {
		sys.replicateOverlay()
	}
	return nil
}

// simEpoch anchors the simulator's virtual clock onto the wall-clock type
// that summary soft state uses.
var simEpoch = time.Unix(0, 0)

// virtualNow converts the simulator's virtual time to a time.Time.
func (sys *System) virtualNow() time.Time { return simEpoch.Add(sys.Sim.Now()) }

// refreshLocalSummaries rebuilds every server's local summary from its
// store and attached summary-mode owners, accounting the owner exports.
func (sys *System) refreshLocalSummaries() error {
	now := sys.virtualNow()
	for _, id := range sys.order {
		srv := sys.servers[id]
		local, err := summary.FromRecords(sys.Schema, sys.Cfg.Summary, srv.Store.Records())
		if err != nil {
			return err
		}
		local.Origin = srv.ID
		for _, o := range srv.Owners {
			if o.Policy.Mode == policy.ExportSummary {
				osum, err := o.ExportSummary(sys.Cfg.Summary)
				if err != nil {
					return err
				}
				osum.Touch(now, sys.Cfg.Summary.TTL)
				srv.ownerSummaries[o.ID] = osum
				// Owner -> attachment point export message.
				sys.Sim.Account(netsim.Update, osum.SizeBytes())
				if err := local.Merge(osum); err != nil {
					return err
				}
			}
		}
		local.Touch(now, sys.Cfg.Summary.TTL)
		srv.localSummary = local
	}
	return nil
}

// aggregateBranch computes branch summaries bottom-up. Each non-root server
// sends its branch summary to its parent: n-1 messages per epoch.
func (sys *System) aggregateBranch(n *hierarchy.Node) error {
	srv := sys.servers[n.ID]
	branch := srv.localSummary.Clone()
	branch.Origin = srv.ID
	for _, cid := range childIDs(n) {
		child, _ := sys.Tree.Node(cid)
		if err := sys.aggregateBranch(child); err != nil {
			return err
		}
		childSrv := sys.servers[cid]
		// Branch summaries are rebuilt fresh every epoch and read-only in
		// between, so holders reference rather than copy them; the wire
		// size is still accounted per message.
		cs := childSrv.branchSummary
		srv.childSummaries[cid] = cs
		// Child -> parent aggregation message.
		sys.Sim.Send(childSrv.Host, srv.Host, netsim.Update, cs.SizeBytes(), nil)
		if err := branch.Merge(cs); err != nil {
			return err
		}
	}
	srv.branchSummary = branch
	return nil
}

// overlayOrigins returns the IDs whose branch summaries the server must
// replicate: its siblings, its ancestors, and its ancestors' siblings
// (paper Fig. 2). Combined with its own child summaries these cover the
// entire hierarchy from any starting server.
func overlayOrigins(n *hierarchy.Node) []string {
	var out []string
	for cur := n; cur.Parent != nil; cur = cur.Parent {
		for _, sib := range cur.Siblings() {
			out = append(out, sib.ID)
		}
		out = append(out, cur.Parent.ID) // ancestor
	}
	return out
}

// replicateOverlay installs every server's overlay replicas and accounts
// one update message per (holder, origin) pair. The real propagation rides
// the hierarchy links (down-branch for descendants, via the parent for
// siblings); the message count is the same, so accounting per delivered
// summary matches the paper's O(kn log n) replication cost.
func (sys *System) replicateOverlay() {
	for _, id := range sys.order {
		srv := sys.servers[id]
		srv.replicas = make(map[string]*summary.Summary, len(srv.replicas))
		srv.ancestorLocal = make(map[string]*summary.Summary)
		ancestors := make(map[string]bool)
		for cur := srv.node.Parent; cur != nil; cur = cur.Parent {
			ancestors[cur.ID] = true
		}
		for _, origin := range overlayOrigins(srv.node) {
			osrv := sys.servers[origin]
			if osrv.branchSummary == nil {
				continue
			}
			srv.replicas[origin] = osrv.branchSummary
			bytes := osrv.branchSummary.SizeBytes()
			if ancestors[origin] && osrv.localSummary != nil {
				// Piggyback the ancestor's local-data summary on the same
				// down-branch replication message.
				srv.ancestorLocal[origin] = osrv.localSummary
				bytes += osrv.localSummary.SizeBytes()
			}
			sys.Sim.Send(osrv.Host, srv.Host, netsim.Update, bytes, nil)
		}
	}
}

// ExpireStale drops summaries whose soft-state TTL has passed, modelling
// the paper's TTL-based freshness. It returns how many entries expired.
func (sys *System) ExpireStale() int {
	now := sys.virtualNow()
	expired := 0
	for _, id := range sys.order {
		srv := sys.servers[id]
		for cid, cs := range srv.childSummaries {
			if cs.Expired(now) {
				delete(srv.childSummaries, cid)
				expired++
			}
		}
		for oid, rs := range srv.replicas {
			if rs.Expired(now) {
				delete(srv.replicas, oid)
				expired++
			}
		}
		for oid, os := range srv.ownerSummaries {
			if os.Expired(now) {
				delete(srv.ownerSummaries, oid)
				expired++
			}
		}
	}
	return expired
}

// UpdateBytesPerEpoch measures the update traffic of one aggregation epoch
// by running Aggregate with a scratch counter. It leaves the summaries in
// place (they are recomputed identically) and restores the previous stats.
func (sys *System) UpdateBytesPerEpoch() (int64, error) {
	saved := sys.Sim.Stats
	sys.Sim.ResetStats()
	if err := sys.Aggregate(); err != nil {
		sys.Sim.Stats = saved
		return 0, err
	}
	bytes := sys.Sim.Stats.Bytes[netsim.Update]
	sys.Sim.Stats = saved
	return bytes, nil
}
