package core

import (
	"fmt"
	"sort"
	"time"

	"roads/internal/netsim"
	"roads/internal/policy"
	"roads/internal/query"
	"roads/internal/record"
)

// redirectEntryBytes is the wire cost of naming one target server in a
// redirect response; redirectHeaderBytes is the fixed response header.
const (
	redirectEntryBytes  = 16
	redirectHeaderBytes = 24
)

// SearchResult reports one resolved query.
type SearchResult struct {
	// Latency is the paper's query latency: the time from the client
	// initiating the query until it reaches the last server it needs to
	// contact (forwarding only — no record retrieval).
	Latency time.Duration
	// QueryBytes is the query-forwarding traffic (queries + redirects).
	QueryBytes int64
	// Contacted lists every server the query reached, in contact order.
	Contacted []string
	// Visits records each contact with its arrival time — a trace of how
	// the resolution unfolded, for debugging and latency analysis.
	Visits []Visit
	// Endpoints are the servers whose local data matched — where detailed
	// records live and owners apply their policies.
	Endpoints []string
	// Records are the matching records collected from endpoint stores and
	// owners, after per-owner policy filtering.
	Records []*record.Record
	// ResponseTime is the Fig. 11 metric: Latency plus, per endpoint, the
	// store retrieval cost and the result return trip, taking the max over
	// endpoints since they work in parallel.
	ResponseTime time.Duration
}

// Visit is one entry of a resolution trace.
type Visit struct {
	Server  string
	Arrival time.Duration
}

// visit tracks one server contact during resolution.
type visit struct {
	server  *Server
	arrival time.Duration
	// isStart marks the first contact: only the start server consults its
	// overlay replicas; redirected servers search down their own branches
	// individually (paper Fig. 2), which keeps the searched branches
	// disjoint.
	isStart bool
}

// Resolve answers a query starting from the given server (the client is
// co-located with it, e.g. the user's own site). With the overlay enabled
// the start server can redirect anywhere in the hierarchy; without it the
// client must first travel to the root (basic-hierarchy mode).
//
// The client-mediated protocol matches the paper: a contacted server
// evaluates the query against all summaries it holds and sends the client
// a redirect listing the matching servers; the client then queries those
// servers in parallel.
func (sys *System) Resolve(q *query.Query, startID string) (*SearchResult, error) {
	start, ok := sys.servers[startID]
	if !ok {
		return nil, fmt.Errorf("core: unknown start server %q", startID)
	}
	if !q.Bound() {
		if err := q.Bind(sys.Schema); err != nil {
			return nil, err
		}
	}
	res := &SearchResult{}
	clientHost := start.Host

	// contacted dedups at enqueue time so each server is queried (and each
	// query message accounted) exactly once even when the overlay and the
	// descent name the same target.
	contacted := make(map[string]bool)
	var pending []visit

	if sys.Cfg.OverlayEnabled {
		// Client and start server are co-located: first contact is free.
		contacted[start.ID] = true
		pending = append(pending, visit{server: start, arrival: 0, isStart: true})
	} else {
		// Basic hierarchy: every query starts at the root.
		root := sys.servers[sys.Tree.Root().ID]
		arrival := sys.Sim.LatencyBetween(clientHost, root.Host)
		res.QueryBytes += int64(q.SizeBytes())
		sys.Sim.Account(netsim.Query, q.SizeBytes())
		contacted[root.ID] = true
		pending = append(pending, visit{server: root, arrival: arrival})
	}

	for len(pending) > 0 {
		v := pending[0]
		pending = pending[1:]
		srv := v.server
		res.Contacted = append(res.Contacted, srv.ID)
		res.Visits = append(res.Visits, Visit{Server: srv.ID, Arrival: v.arrival})
		if v.arrival > res.Latency {
			res.Latency = v.arrival
		}
		if srv.failed {
			// A stale redirect sent the client to a crashed server: the
			// contact times out and this branch of the search dead-ends
			// until maintenance repairs the hierarchy.
			continue
		}

		targets := sys.matchingTargets(srv, q, contacted, v.isStart)
		isEndpoint := srv.localSummary != nil && q.MatchSummary(srv.localSummary)
		if isEndpoint {
			res.Endpoints = append(res.Endpoints, srv.ID)
		}
		if len(targets) == 0 {
			continue
		}

		// Redirect response back to the client, then parallel queries out.
		redirectAt := v.arrival + sys.Cfg.ProcessingDelay + sys.Sim.LatencyBetween(srv.Host, clientHost)
		respBytes := redirectHeaderBytes + redirectEntryBytes*len(targets)
		res.QueryBytes += int64(respBytes)
		sys.Sim.Account(netsim.Response, respBytes)
		for _, tgt := range targets {
			arrival := redirectAt + sys.Sim.LatencyBetween(clientHost, tgt.Host)
			res.QueryBytes += int64(q.SizeBytes())
			sys.Sim.Account(netsim.Query, q.SizeBytes())
			pending = append(pending, visit{server: tgt, arrival: arrival})
		}
	}

	sort.Strings(res.Endpoints)
	return res, nil
}

// matchingTargets evaluates the query against the summaries held at srv and
// returns the servers the client should contact next: matching children
// always, plus — at the start server only — matching overlay replicas.
// Sibling and ancestor-sibling branches give a disjoint cover of the rest
// of the hierarchy; matching ancestors are contacted for the data attached
// directly to them (their own subtrees are covered by the sibling sets, and
// enqueue-time dedup stops any re-descent from double-contacting servers).
func (sys *System) matchingTargets(srv *Server, q *query.Query, contacted map[string]bool, isStart bool) []*Server {
	var out []*Server
	add := func(id string) {
		if contacted[id] {
			return
		}
		tgt, ok := sys.servers[id]
		if !ok {
			return
		}
		contacted[id] = true
		out = append(out, tgt)
	}
	for _, cid := range childIDs(srv.node) {
		if cs, ok := srv.childSummaries[cid]; ok && q.MatchSummary(cs) {
			add(cid)
		}
	}
	if isStart && sys.Cfg.OverlayEnabled && len(srv.replicas) > 0 {
		ancestors := make(map[string]bool)
		for cur := srv.node.Parent; cur != nil; cur = cur.Parent {
			ancestors[cur.ID] = true
		}
		ids := make([]string, 0, len(srv.replicas))
		for oid := range srv.replicas {
			ids = append(ids, oid)
		}
		sort.Strings(ids)
		for _, oid := range ids {
			rep := srv.replicas[oid]
			if ancestors[oid] {
				// An ancestor's branch is covered by the sibling sets; the
				// only data unique to it is what is attached locally, so
				// contact it only when its replicated local summary matches.
				if ls := srv.ancestorLocal[oid]; ls != nil && q.MatchSummary(ls) {
					add(oid)
				}
				continue
			}
			if q.MatchSummary(rep) {
				add(oid)
			}
		}
	}
	return out
}

// Retrieve completes a resolved query by fetching the matching records from
// every endpoint (store records plus owner-held records under their
// policies) and computing the Fig. 11 total response time. Endpoints work
// in parallel: the response time is the query latency plus the slowest
// endpoint's retrieval + return trip.
func (sys *System) Retrieve(q *query.Query, res *SearchResult, clientHost int) error {
	res.ResponseTime = res.Latency
	for _, eid := range res.Endpoints {
		srv := sys.servers[eid]
		var endpointCost time.Duration
		var recs []*record.Record

		sres, err := srv.Store.Search(q)
		if err != nil {
			return err
		}
		endpointCost += sres.Cost
		recs = append(recs, sres.Records...)

		for _, o := range srv.Owners {
			if o.Policy.Mode == policy.ExportRecords {
				continue // records already in the server's store
			}
			// Summary-mode owners answer from their own store, applying
			// their view for the requester; the cost model charges the
			// same backend rates.
			ans, err := o.Answer(q)
			if err != nil {
				return err
			}
			endpointCost += sys.Cfg.Cost.PerQuery +
				time.Duration(o.NumRecords())*sys.Cfg.Cost.PerScan +
				time.Duration(len(ans))*sys.Cfg.Cost.PerRecord
			recs = append(recs, ans...)
		}

		returnBytes := 0
		for _, r := range recs {
			returnBytes += r.SizeBytes(sys.Schema)
		}
		if returnBytes > 0 {
			sys.Sim.Account(netsim.Response, returnBytes)
		}
		total := res.Latency + endpointCost +
			sys.Sim.LatencyBetween(srv.Host, clientHost) + sys.Sim.TransferTime(returnBytes)
		if total > res.ResponseTime {
			res.ResponseTime = total
		}
		res.Records = append(res.Records, recs...)
	}
	return nil
}

// ResolveAndRetrieve runs Resolve then Retrieve with the client co-located
// at the start server.
func (sys *System) ResolveAndRetrieve(q *query.Query, startID string) (*SearchResult, error) {
	res, err := sys.Resolve(q, startID)
	if err != nil {
		return nil, err
	}
	start := sys.servers[startID]
	if err := sys.Retrieve(q, res, start.Host); err != nil {
		return nil, err
	}
	return res, nil
}
