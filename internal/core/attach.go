package core

import (
	"fmt"
	"sort"

	"roads/internal/hierarchy"
	"roads/internal/netsim"
)

// SelectAttachmentPoint picks a server for a new resource owner using the
// same descent as server joins (paper §III-A: "the selection of attachment
// points follows a similar process as choosing parent server"): starting
// at the root, descend into the child branch of least depth (ties: fewest
// descendants) until a server with attachment capacity is found. Capacity
// is bounded by maxOwners per server (<=0 means unbounded, so the root
// itself is chosen). The consultation traffic is accounted as maintenance
// messages.
func (sys *System) SelectAttachmentPoint(maxOwners int) (string, error) {
	if sys.Tree == nil {
		return "", fmt.Errorf("core: no servers")
	}
	const consultBytes = 64
	accepts := func(srv *Server) bool {
		return maxOwners <= 0 || len(srv.Owners) < maxOwners
	}
	var best string
	var descend func(n *hierarchy.Node) bool
	descend = func(n *hierarchy.Node) bool {
		sys.Sim.Account(netsim.Maintenance, 2*consultBytes)
		srv := sys.servers[n.ID]
		if accepts(srv) {
			best = srv.ID
			return true
		}
		children := append([]*hierarchy.Node(nil), n.Children...)
		sort.Slice(children, func(i, j int) bool {
			if children[i].SubtreeDepth != children[j].SubtreeDepth {
				return children[i].SubtreeDepth < children[j].SubtreeDepth
			}
			if children[i].Descendants != children[j].Descendants {
				return children[i].Descendants < children[j].Descendants
			}
			return children[i].ID < children[j].ID
		})
		for _, c := range children {
			if descend(c) {
				return true
			}
		}
		return false
	}
	if !descend(sys.Tree.Root()) {
		return "", fmt.Errorf("core: no server accepts another owner (max %d per server)", maxOwners)
	}
	return best, nil
}

// OwnerDistribution returns how many owners each server hosts, keyed by
// server ID — a balance diagnostic for attachment-point selection.
func (sys *System) OwnerDistribution() map[string]int {
	out := make(map[string]int, len(sys.servers))
	for id, srv := range sys.servers {
		out[id] = len(srv.Owners)
	}
	return out
}
