package core

import (
	"fmt"
	"math/rand"
	"testing"

	"roads/internal/policy"
)

func TestResolveScopedBoundsSearch(t *testing.T) {
	sys, w := buildSystem(t, 40, 20)
	rng := rand.New(rand.NewSource(21))
	// Pick a leaf start server so every scope level is meaningful.
	var start *Server
	for _, srv := range sys.Servers() {
		if srv.Level() >= 2 {
			start = srv
			break
		}
	}
	if start == nil {
		t.Skip("tree too flat")
	}
	q, err := w.GenQuery("q", 2, 0.5, rng)
	if err != nil {
		t.Fatal(err)
	}

	prevContacts := -1
	for scope := 0; scope <= start.Level(); scope++ {
		res, err := sys.ResolveScoped(q.Clone(), start.ID, scope)
		if err != nil {
			t.Fatalf("scope %d: %v", scope, err)
		}
		// Every contacted server must lie within the scope's branch.
		branch, err := sys.SubtreeServers(start.ID, scope)
		if err != nil {
			t.Fatal(err)
		}
		inBranch := make(map[string]bool, len(branch))
		for _, id := range branch {
			inBranch[id] = true
		}
		for _, id := range res.Contacted {
			if !inBranch[id] {
				t.Fatalf("scope %d contacted %s outside its branch", scope, id)
			}
		}
		// Completeness within scope: all matching records of branch owners.
		want := 0
		for i, recs := range w.PerNode {
			if !inBranch[fmt.Sprintf("s%03d", i)] {
				continue
			}
			for _, r := range recs {
				if q.MatchRecord(r) {
					want++
				}
			}
		}
		if err := sys.Retrieve(q, res, start.Host); err != nil {
			t.Fatal(err)
		}
		if len(res.Records) != want {
			t.Fatalf("scope %d: got %d records; want %d", scope, len(res.Records), want)
		}
		// Widening the scope can only contact more (or equally many) servers.
		if len(res.Contacted) < prevContacts {
			t.Fatalf("scope %d contacted fewer servers (%d) than scope %d (%d)",
				scope, len(res.Contacted), scope-1, prevContacts)
		}
		prevContacts = len(res.Contacted)
	}

	// Full scope equals plain Resolve.
	full, err := sys.ResolveScoped(q.Clone(), start.ID, ScopeAll)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := sys.Resolve(q.Clone(), start.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Contacted) != len(plain.Contacted) {
		t.Fatalf("ScopeAll contacted %d; Resolve contacted %d", len(full.Contacted), len(plain.Contacted))
	}
}

func TestResolveScopedErrors(t *testing.T) {
	sys, w := buildSystem(t, 10, 22)
	q, _ := w.GenQuery("q", 2, 0.5, rand.New(rand.NewSource(23)))
	if _, err := sys.ResolveScoped(q, "ghost", 0); err == nil {
		t.Fatal("unknown start must fail")
	}
	if _, err := sys.ResolveScoped(q.Clone(), "s001", -5); err == nil {
		t.Fatal("negative scope (other than ScopeAll) must fail")
	}
}

func TestSubtreeServers(t *testing.T) {
	sys, _ := buildSystem(t, 20, 24)
	rootID := sys.Tree.Root().ID
	all, err := sys.SubtreeServers(rootID, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 20 {
		t.Fatalf("root scope-0 covers %d servers; want all 20", len(all))
	}
	// A leaf's scope-0 branch is itself.
	for _, srv := range sys.Servers() {
		if srv.node.IsLeaf() {
			own, err := sys.SubtreeServers(srv.ID, 0)
			if err != nil {
				t.Fatal(err)
			}
			if len(own) != 1 || own[0] != srv.ID {
				t.Fatalf("leaf scope-0 = %v; want itself", own)
			}
			break
		}
	}
	if _, err := sys.SubtreeServers("ghost", 0); err == nil {
		t.Fatal("unknown server must fail")
	}
}

func TestSelectAttachmentPointBalances(t *testing.T) {
	sys, w := buildSystem(t, 15, 25)
	// Each server already hosts one owner (buildSystem); with a cap of 2,
	// the next 15 owners must spread one per server.
	for i := 0; i < 15; i++ {
		id, err := sys.SelectAttachmentPoint(2)
		if err != nil {
			t.Fatal(err)
		}
		o := policy.NewOwner(fmt.Sprintf("extra%d", i), w.Schema, nil)
		if err := sys.AttachOwner(id, o); err != nil {
			t.Fatal(err)
		}
	}
	for id, n := range sys.OwnerDistribution() {
		if n != 2 {
			t.Fatalf("server %s hosts %d owners; want exactly 2", id, n)
		}
	}
	// Now everyone is full: selection must fail.
	if _, err := sys.SelectAttachmentPoint(2); err == nil {
		t.Fatal("selection must fail when all servers are at capacity")
	}
	// Unbounded capacity picks the root.
	id, err := sys.SelectAttachmentPoint(0)
	if err != nil {
		t.Fatal(err)
	}
	if id != sys.Tree.Root().ID {
		t.Fatalf("unbounded selection = %s; want root", id)
	}
}
