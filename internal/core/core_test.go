package core

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"time"

	"roads/internal/netsim"
	"roads/internal/policy"
	"roads/internal/query"
	"roads/internal/record"
	"roads/internal/summary"
	"roads/internal/workload"
)

// buildSystem creates an n-server deployment where server i hosts one
// summary-mode owner holding the workload's node-i records.
func buildSystem(t *testing.T, n int, seed int64) (*System, *workload.Workload) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	wcfg := workload.Config{Nodes: n, RecordsPerNode: 60, AttrsPerDist: 4}
	w := workload.MustGenerate(wcfg, rng)

	cfg := DefaultConfig()
	cfg.Summary.Buckets = 200
	sim := netsim.New(netsim.ConstLatency(10 * time.Millisecond))
	sys, err := NewSystem(w.Schema, cfg, sim)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("s%03d", i)
		if _, err := sys.AddServer(id, i); err != nil {
			t.Fatal(err)
		}
		o := policy.NewOwner(fmt.Sprintf("owner%d", i), w.Schema, nil)
		o.SetRecords(w.PerNode[i])
		if err := sys.AttachOwner(id, o); err != nil {
			t.Fatal(err)
		}
	}
	if err := sys.Aggregate(); err != nil {
		t.Fatal(err)
	}
	return sys, w
}

func TestConfigValidate(t *testing.T) {
	cfg := DefaultConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := cfg
	bad.MaxChildren = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("expected error for zero MaxChildren")
	}
	bad = cfg
	bad.SummaryPeriod = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("expected error for zero period")
	}
}

func TestNewSystemValidation(t *testing.T) {
	sim := netsim.New(netsim.ConstLatency(0))
	if _, err := NewSystem(nil, DefaultConfig(), sim); err == nil {
		t.Fatal("nil schema must fail")
	}
	if _, err := NewSystem(record.DefaultSchema(4), DefaultConfig(), nil); err == nil {
		t.Fatal("nil sim must fail")
	}
}

func TestAddServerDuplicate(t *testing.T) {
	sim := netsim.New(netsim.ConstLatency(0))
	sys, _ := NewSystem(record.DefaultSchema(4), DefaultConfig(), sim)
	if _, err := sys.AddServer("a", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.AddServer("a", 1); err == nil {
		t.Fatal("duplicate server must fail")
	}
}

func TestRootBranchSummaryCoversEverything(t *testing.T) {
	sys, w := buildSystem(t, 30, 1)
	root, _ := sys.Server(sys.Tree.Root().ID)
	bs := root.BranchSummary()
	if bs == nil {
		t.Fatal("root has no branch summary after Aggregate")
	}
	if int(bs.Records) != w.TotalRecords() {
		t.Fatalf("root branch summary covers %d records; want %d", bs.Records, w.TotalRecords())
	}
	// Every record's values must be matched by the root summary.
	for _, r := range w.AllRecords()[:100] {
		for j := 0; j < 4; j++ {
			v := r.Num(j)
			if !bs.MatchRange(j, v-0.01, v+0.01) {
				t.Fatalf("root summary misses value %g on attr %d", v, j)
			}
		}
	}
}

func TestOverlayCoverage(t *testing.T) {
	sys, _ := buildSystem(t, 40, 2)
	// Invariant from the paper: each server's child summaries + non-
	// ancestor replicas + its own local data cover the entire hierarchy.
	for _, srv := range sys.Servers() {
		covered := make(map[string]bool)
		var markBranch func(id string)
		markBranch = func(id string) {
			covered[id] = true
			n, _ := sys.Tree.Node(id)
			for _, c := range n.Children {
				markBranch(c.ID)
			}
		}
		covered[srv.ID] = true
		for _, c := range srv.node.Children {
			markBranch(c.ID)
		}
		ancestors := make(map[string]bool)
		for cur := srv.node.Parent; cur != nil; cur = cur.Parent {
			ancestors[cur.ID] = true
		}
		for oid := range srv.Replicas() {
			if !ancestors[oid] {
				markBranch(oid)
			} else {
				// Ancestors are covered for their locally attached data
				// via the piggybacked local summaries.
				covered[oid] = true
			}
		}
		if len(covered) != sys.NumServers() {
			t.Fatalf("server %s covers %d of %d servers", srv.ID, len(covered), sys.NumServers())
		}
	}
}

func TestReplicaSetMatchesPaperFormula(t *testing.T) {
	sys, _ := buildSystem(t, 40, 3)
	for _, srv := range sys.Servers() {
		// Paper: a level-i node replicates its sibling(s), its i ancestors
		// and its ancestors' siblings.
		want := 0
		for cur := srv.node; cur.Parent != nil; cur = cur.Parent {
			want += len(cur.Siblings()) + 1 // siblings at this level + the ancestor
		}
		if got := len(srv.Replicas()); got != want {
			t.Fatalf("server %s (level %d) has %d replicas; want %d", srv.ID, srv.Level(), got, want)
		}
	}
}

// bruteForceEndpoints returns the servers whose local data actually match.
func bruteForceEndpoints(sys *System, w *workload.Workload, q *query.Query) []string {
	var out []string
	for i, srv := range sys.Servers() {
		for _, r := range w.PerNode[i] {
			if q.MatchRecord(r) {
				out = append(out, srv.ID)
				break
			}
		}
	}
	sort.Strings(out)
	return out
}

func TestResolveFindsAllMatchingRecords(t *testing.T) {
	sys, w := buildSystem(t, 40, 4)
	rng := rand.New(rand.NewSource(5))
	queries, err := w.GenQueries(20, 4, 0.3, rng)
	if err != nil {
		t.Fatal(err)
	}
	servers := sys.Servers()
	for qi, q := range queries {
		start := servers[rng.Intn(len(servers))].ID
		res, err := sys.ResolveAndRetrieve(q, start)
		if err != nil {
			t.Fatalf("query %d: %v", qi, err)
		}
		// Completeness: every truly matching record is returned.
		want := 0
		for _, r := range w.AllRecords() {
			if q.MatchRecord(r) {
				want++
			}
		}
		if len(res.Records) != want {
			t.Fatalf("query %d from %s: got %d records; want %d", qi, start, len(res.Records), want)
		}
		// Soundness of returned records.
		for _, r := range res.Records {
			if !q.MatchRecord(r) {
				t.Fatalf("query %d returned non-matching record %s", qi, r.ID)
			}
		}
		// Endpoints must be a superset of brute-force matching servers.
		wantEps := bruteForceEndpoints(sys, w, q)
		eps := make(map[string]bool, len(res.Endpoints))
		for _, e := range res.Endpoints {
			eps[e] = true
		}
		for _, e := range wantEps {
			if !eps[e] {
				t.Fatalf("query %d missed endpoint %s", qi, e)
			}
		}
	}
}

func TestResolveWithoutOverlayStartsAtRoot(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	wcfg := workload.Config{Nodes: 25, RecordsPerNode: 40, AttrsPerDist: 4}
	w := workload.MustGenerate(wcfg, rng)
	cfg := DefaultConfig()
	cfg.OverlayEnabled = false
	cfg.Summary.Buckets = 200
	sim := netsim.New(netsim.ConstLatency(10 * time.Millisecond))
	sys, err := NewSystem(w.Schema, cfg, sim)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 25; i++ {
		id := fmt.Sprintf("s%03d", i)
		if _, err := sys.AddServer(id, i); err != nil {
			t.Fatal(err)
		}
		o := policy.NewOwner(fmt.Sprintf("o%d", i), w.Schema, nil)
		o.SetRecords(w.PerNode[i])
		if err := sys.AttachOwner(id, o); err != nil {
			t.Fatal(err)
		}
	}
	if err := sys.Aggregate(); err != nil {
		t.Fatal(err)
	}
	q, err := w.GenQuery("q", 4, 0.3, rng)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.ResolveAndRetrieve(q, "s010")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Contacted) == 0 || res.Contacted[0] != sys.Tree.Root().ID {
		t.Fatalf("no-overlay resolution must start at root, got %v", res.Contacted[:1])
	}
	want := 0
	for _, r := range w.AllRecords() {
		if q.MatchRecord(r) {
			want++
		}
	}
	if len(res.Records) != want {
		t.Fatalf("no-overlay mode returned %d records; want %d", len(res.Records), want)
	}
	// Latency must include the client->root trip.
	if res.Latency < 10*time.Millisecond {
		t.Fatalf("latency %v too small for root-start search", res.Latency)
	}
}

func TestResolveUnknownStart(t *testing.T) {
	sys, w := buildSystem(t, 10, 7)
	q, _ := w.GenQuery("q", 2, 0.25, rand.New(rand.NewSource(8)))
	if _, err := sys.Resolve(q, "ghost"); err == nil {
		t.Fatal("unknown start server must fail")
	}
}

func TestUpdateBytesConstantInRecordCount(t *testing.T) {
	sysSmall, _ := buildSystem(t, 20, 9)
	small, err := sysSmall.UpdateBytesPerEpoch()
	if err != nil {
		t.Fatal(err)
	}

	// Same server count, 5x the records.
	rng := rand.New(rand.NewSource(9))
	wcfg := workload.Config{Nodes: 20, RecordsPerNode: 300, AttrsPerDist: 4}
	w := workload.MustGenerate(wcfg, rng)
	cfg := DefaultConfig()
	cfg.Summary.Buckets = 200
	sim := netsim.New(netsim.ConstLatency(10 * time.Millisecond))
	sysBig, _ := NewSystem(w.Schema, cfg, sim)
	for i := 0; i < 20; i++ {
		id := fmt.Sprintf("s%03d", i)
		sysBig.AddServer(id, i)
		o := policy.NewOwner(fmt.Sprintf("o%d", i), w.Schema, nil)
		o.SetRecords(w.PerNode[i])
		sysBig.AttachOwner(id, o)
	}
	if err := sysBig.Aggregate(); err != nil {
		t.Fatal(err)
	}
	big, err := sysBig.UpdateBytesPerEpoch()
	if err != nil {
		t.Fatal(err)
	}
	if small != big {
		t.Fatalf("update bytes changed with record count: %d vs %d (summaries are constant-size)", small, big)
	}
	if small <= 0 {
		t.Fatal("update bytes must be positive")
	}
}

func TestTrustedOwnerRecordsServedFromStore(t *testing.T) {
	schema := record.DefaultSchema(4)
	cfg := DefaultConfig()
	cfg.Summary.Buckets = 100
	sim := netsim.New(netsim.ConstLatency(time.Millisecond))
	sys, _ := NewSystem(schema, cfg, sim)
	sys.AddServer("a", 0)
	sys.AddServer("b", 1)

	// Owner trusts server b: raw records exported there.
	o := policy.NewOwner("own", schema, policy.NewPolicy(policy.ExportRecords))
	r := record.New(schema, "r1", "own")
	r.SetNum(0, 0.5)
	o.SetRecords([]*record.Record{r})
	if err := sys.AttachOwner("b", o); err != nil {
		t.Fatal(err)
	}
	srvB, _ := sys.Server("b")
	if srvB.Store.Len() != 1 {
		t.Fatalf("store has %d records; want 1", srvB.Store.Len())
	}
	if err := sys.Aggregate(); err != nil {
		t.Fatal(err)
	}
	q := query.New("q", query.NewRange("a0", 0.4, 0.6))
	res, err := sys.ResolveAndRetrieve(q, "a")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 1 || res.Records[0].ID != "r1" {
		t.Fatalf("got %d records; want the trusted-export record", len(res.Records))
	}
}

func TestVoluntarySharingFiltersAtOwner(t *testing.T) {
	schema := record.DefaultSchema(2)
	cfg := DefaultConfig()
	cfg.Summary.Buckets = 100
	sim := netsim.New(netsim.ConstLatency(time.Millisecond))
	sys, _ := NewSystem(schema, cfg, sim)
	sys.AddServer("a", 0)

	pol := policy.NewPolicy(policy.ExportSummary)
	pol.DefaultView = policy.View{Name: "deny-all", Filter: func(*record.Record) bool { return false }}
	pol.SetView("friend", policy.View{Name: "allow"})
	o := policy.NewOwner("own", schema, pol)
	r := record.New(schema, "r1", "own")
	r.SetNum(0, 0.5)
	r.SetNum(1, 0.5)
	o.SetRecords([]*record.Record{r})
	sys.AttachOwner("a", o)
	sys.Aggregate()

	q := query.New("q", query.NewRange("a0", 0, 1))
	q.Requester = "stranger"
	res, err := sys.ResolveAndRetrieve(q, "a")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 0 {
		t.Fatal("stranger must get nothing under deny-all view")
	}
	// The query still *reached* the owner (discoverability) — it appears
	// as an endpoint even though the owner returned nothing.
	if len(res.Endpoints) != 1 {
		t.Fatalf("endpoints = %v; want the owner's server", res.Endpoints)
	}

	q2 := query.New("q2", query.NewRange("a0", 0, 1))
	q2.Requester = "friend"
	res2, err := sys.ResolveAndRetrieve(q2, "a")
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Records) != 1 {
		t.Fatal("friend must see the record")
	}
}

func TestRemoveServerAndReaggregate(t *testing.T) {
	sys, w := buildSystem(t, 30, 10)
	// Remove a non-root server.
	var victim string
	for _, srv := range sys.Servers() {
		if srv.ID != sys.Tree.Root().ID {
			victim = srv.ID
			break
		}
	}
	victimIdx := -1
	for i := range sys.Servers() {
		if fmt.Sprintf("s%03d", i) == victim {
			victimIdx = i
			break
		}
	}
	if err := sys.RemoveServer(victim); err != nil {
		t.Fatal(err)
	}
	if err := sys.Tree.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := sys.Aggregate(); err != nil {
		t.Fatal(err)
	}
	// Queries still resolve over the surviving servers' data.
	q, _ := w.GenQuery("q", 2, 0.5, rand.New(rand.NewSource(11)))
	res, err := sys.ResolveAndRetrieve(q, sys.Tree.Root().ID)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for i, recs := range w.PerNode {
		if i == victimIdx {
			continue // departed with its server
		}
		for _, r := range recs {
			if q.MatchRecord(r) {
				want++
			}
		}
	}
	if len(res.Records) != want {
		t.Fatalf("after removal got %d records; want %d", len(res.Records), want)
	}
	if err := sys.RemoveServer("ghost"); err == nil {
		t.Fatal("unknown server must fail")
	}
}

func TestExpireStale(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	wcfg := workload.Config{Nodes: 10, RecordsPerNode: 20, AttrsPerDist: 4}
	w := workload.MustGenerate(wcfg, rng)
	cfg := DefaultConfig()
	cfg.Summary.Buckets = 100
	cfg.Summary.TTL = time.Minute
	sim := netsim.New(netsim.ConstLatency(time.Millisecond))
	sys, _ := NewSystem(w.Schema, cfg, sim)
	for i := 0; i < 10; i++ {
		id := fmt.Sprintf("s%03d", i)
		sys.AddServer(id, i)
		o := policy.NewOwner(fmt.Sprintf("o%d", i), w.Schema, nil)
		o.SetRecords(w.PerNode[i])
		sys.AttachOwner(id, o)
	}
	if err := sys.Aggregate(); err != nil {
		t.Fatal(err)
	}
	if n := sys.ExpireStale(); n != 0 {
		t.Fatalf("nothing should expire immediately, got %d", n)
	}
	// Advance virtual time beyond the TTL; everything expires.
	sim.At(2*time.Minute, func() {})
	sim.Run()
	if n := sys.ExpireStale(); n == 0 {
		t.Fatal("summaries should expire after TTL")
	}
	// Re-aggregation restores them (soft-state refresh).
	if err := sys.Aggregate(); err != nil {
		t.Fatal(err)
	}
	root, _ := sys.Server(sys.Tree.Root().ID)
	if root.BranchSummary() == nil || root.BranchSummary().Empty() {
		t.Fatal("aggregate must restore summaries")
	}
}

func TestQueryBytesAccounted(t *testing.T) {
	sys, w := buildSystem(t, 30, 13)
	q, _ := w.GenQuery("q", 4, 0.3, rand.New(rand.NewSource(14)))
	before := sys.Sim.Stats.Bytes[netsim.Query] + sys.Sim.Stats.Bytes[netsim.Response]
	res, err := sys.Resolve(q, "s005")
	if err != nil {
		t.Fatal(err)
	}
	after := sys.Sim.Stats.Bytes[netsim.Query] + sys.Sim.Stats.Bytes[netsim.Response]
	if int64(after-before) != res.QueryBytes {
		t.Fatalf("sim accounted %d bytes; result says %d", after-before, res.QueryBytes)
	}
	if len(res.Contacted) > 0 && res.Contacted[0] != "s005" {
		t.Fatalf("first contact %s; want start server", res.Contacted[0])
	}
}

func TestSummaryStorageGrowsWithLevel(t *testing.T) {
	sys, _ := buildSystem(t, 80, 15)
	// Paper Table I: a level-i node stores ~k(i+1) summaries, so deeper
	// servers hold at least as many replicas as the root on average.
	root, _ := sys.Server(sys.Tree.Root().ID)
	var deepest *Server
	for _, srv := range sys.Servers() {
		if deepest == nil || srv.Level() > deepest.Level() {
			deepest = srv
		}
	}
	if deepest.Level() == 0 {
		t.Skip("tree too shallow")
	}
	if len(deepest.Replicas()) <= len(root.Replicas()) {
		t.Fatalf("deeper server should hold more replicas: leaf %d vs root %d",
			len(deepest.Replicas()), len(root.Replicas()))
	}
}

func TestResolveVisitsTrace(t *testing.T) {
	sys, w := buildSystem(t, 20, 60)
	q, _ := w.GenQuery("q", 2, 0.5, rand.New(rand.NewSource(61)))
	res, err := sys.Resolve(q, "s003")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Visits) != len(res.Contacted) {
		t.Fatalf("trace has %d visits for %d contacts", len(res.Visits), len(res.Contacted))
	}
	if res.Visits[0].Server != "s003" || res.Visits[0].Arrival != 0 {
		t.Fatalf("first visit = %+v; want the start server at t=0", res.Visits[0])
	}
	var max time.Duration
	for i, v := range res.Visits {
		if v.Server != res.Contacted[i] {
			t.Fatal("visit order must match contact order")
		}
		if v.Arrival > max {
			max = v.Arrival
		}
	}
	if max != res.Latency {
		t.Fatalf("max visit arrival %v != latency %v", max, res.Latency)
	}
}

func TestResolveMixedSchemaWithBloomSummaries(t *testing.T) {
	// Mixed numeric + categorical workload, categorical summaries in Bloom
	// mode: completeness must survive Bloom false positives (they only add
	// contacts, never lose records).
	rng := rand.New(rand.NewSource(80))
	wcfg := workload.Config{Nodes: 16, RecordsPerNode: 40, AttrsPerDist: 2, CategoricalAttrs: 2, CategoricalVocab: 6}
	w := workload.MustGenerate(wcfg, rng)
	cfg := DefaultConfig()
	cfg.Summary.Buckets = 100
	cfg.Summary.Categorical = summary.UseBloom
	cfg.Summary.BloomBits = 512
	cfg.Summary.BloomHashes = 3
	sim := netsim.New(netsim.ConstLatency(5 * time.Millisecond))
	sys, err := NewSystem(w.Schema, cfg, sim)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		id := fmt.Sprintf("s%03d", i)
		if _, err := sys.AddServer(id, i); err != nil {
			t.Fatal(err)
		}
		o := policy.NewOwner(fmt.Sprintf("o%d", i), w.Schema, nil)
		o.SetRecords(w.PerNode[i])
		if err := sys.AttachOwner(id, o); err != nil {
			t.Fatal(err)
		}
	}
	if err := sys.Aggregate(); err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 8; trial++ {
		q := query.New(fmt.Sprintf("q%d", trial),
			query.NewRange("a0", rng.Float64()*0.5, 0.5+rng.Float64()*0.5),
			query.NewEq("c0", fmt.Sprintf("v%d", rng.Intn(6))),
		)
		res, err := sys.ResolveAndRetrieve(q, fmt.Sprintf("s%03d", rng.Intn(16)))
		if err != nil {
			t.Fatal(err)
		}
		want := 0
		for _, r := range w.AllRecords() {
			if q.MatchRecord(r) {
				want++
			}
		}
		if len(res.Records) != want {
			t.Fatalf("trial %d: got %d records; want %d", trial, len(res.Records), want)
		}
	}
}
