// Package core implements the ROADS system itself: servers arranged in the
// federated hierarchy, bottom-up summary aggregation, the replication
// overlay that lets queries start anywhere, and query resolution by
// client-mediated redirects. It runs on the netsim substrate so that
// latency and traffic are accounted exactly as in the paper's simulations,
// and the same logic backs the live prototype.
package core

import (
	"fmt"
	"sort"
	"time"

	"roads/internal/hierarchy"
	"roads/internal/netsim"
	"roads/internal/policy"
	"roads/internal/record"
	"roads/internal/store"
	"roads/internal/summary"
)

// Config controls a ROADS deployment.
type Config struct {
	// MaxChildren caps the hierarchy degree (paper default 8).
	MaxChildren int
	// Summary configures summary construction (buckets etc).
	Summary summary.Config
	// SummaryPeriod is t_s, the soft-state refresh period for summaries.
	SummaryPeriod time.Duration
	// RecordPeriod is t_r, the record update period (used by baselines and
	// by overhead normalization; the paper uses t_r/t_s = 0.1).
	RecordPeriod time.Duration
	// OverlayEnabled turns the replication overlay on (paper's design) or
	// off (basic hierarchy: all queries start at the root) — the ablation
	// of DESIGN.md §5.
	OverlayEnabled bool
	// ProcessingDelay models a server's local summary-evaluation time per
	// query hop.
	ProcessingDelay time.Duration
	// Cost models the local record store backend (Fig. 11).
	Cost store.CostModel
}

// DefaultConfig returns the paper's simulation defaults.
func DefaultConfig() Config {
	return Config{
		MaxChildren:     8,
		Summary:         summary.DefaultConfig(),
		SummaryPeriod:   10 * time.Minute,
		RecordPeriod:    time.Minute,
		OverlayEnabled:  true,
		ProcessingDelay: 2 * time.Millisecond,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.MaxChildren <= 0 {
		return fmt.Errorf("core: MaxChildren must be positive, got %d", c.MaxChildren)
	}
	if err := c.Summary.Validate(); err != nil {
		return err
	}
	if c.SummaryPeriod <= 0 || c.RecordPeriod <= 0 {
		return fmt.Errorf("core: refresh periods must be positive")
	}
	return nil
}

// Server is one ROADS server: a position in the hierarchy, the owners
// attached to it, the summaries it holds, and its local record store.
type Server struct {
	ID string
	// Host is the server's index in the latency space.
	Host int

	node *hierarchy.Node

	// Owners attached at this server. Owners in ExportRecords mode push
	// raw records into Store (they trust this server); owners in
	// ExportSummary mode push only summaries and answer queries themselves.
	Owners []*policy.Owner

	// Store holds the raw records exported by trusting owners.
	Store *store.Store

	// ownerSummaries holds the summary each summary-mode owner exported.
	ownerSummaries map[string]*summary.Summary

	// localSummary condenses everything attached here (store + owner
	// summaries); branchSummary additionally merges all child branches.
	localSummary  *summary.Summary
	branchSummary *summary.Summary

	// childSummaries maps child server ID -> that child's branch summary.
	childSummaries map[string]*summary.Summary

	// replicas maps origin server ID -> replicated branch summary, for the
	// overlay set: siblings, ancestors, and ancestors' siblings.
	replicas map[string]*summary.Summary

	// failed marks a crashed server whose death has not yet been repaired:
	// other servers still hold its (stale) summaries and redirect queries
	// to it, but contacts fail — the soft-state staleness window the churn
	// experiments measure.
	failed bool

	// ancestorLocal holds, for each ancestor, the summary of the data
	// attached directly to it (piggybacked on the branch-summary
	// replication). A sibling cover reaches every other *branch*; this is
	// what lets a query also reach data attached at the ancestors
	// themselves without re-searching their subtrees.
	ancestorLocal map[string]*summary.Summary
}

// Level returns the server's depth below the root.
func (s *Server) Level() int { return s.node.Level() }

// BranchSummary returns the server's aggregated branch summary (nil before
// the first aggregation pass).
func (s *Server) BranchSummary() *summary.Summary { return s.branchSummary }

// LocalSummary returns the summary of data attached directly to the server.
func (s *Server) LocalSummary() *summary.Summary { return s.localSummary }

// ChildSummaries returns the child branch summaries keyed by child ID.
func (s *Server) ChildSummaries() map[string]*summary.Summary { return s.childSummaries }

// Replicas returns the overlay-replicated summaries keyed by origin ID.
func (s *Server) Replicas() map[string]*summary.Summary { return s.replicas }

// NumSummaries reports how many summaries the server stores in total
// (children + replicas), the paper's per-node storage metric (Table I).
func (s *Server) NumSummaries() int {
	return len(s.childSummaries) + len(s.replicas)
}

// System is a ROADS deployment.
type System struct {
	Cfg    Config
	Schema *record.Schema
	Tree   *hierarchy.Tree
	Sim    *netsim.Sim

	servers map[string]*Server
	order   []string // insertion order, for deterministic iteration
}

// NewSystem creates an empty deployment. The first server added becomes the
// hierarchy root.
func NewSystem(schema *record.Schema, cfg Config, sim *netsim.Sim) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if schema == nil {
		return nil, fmt.Errorf("core: nil schema")
	}
	if sim == nil {
		return nil, fmt.Errorf("core: nil simulator")
	}
	return &System{
		Cfg:     cfg,
		Schema:  schema,
		Sim:     sim,
		servers: make(map[string]*Server),
	}, nil
}

// AddServer joins a server to the deployment. host is its index in the
// latency space. Join traffic is accounted as maintenance messages (one
// small request/response per consulted server).
func (sys *System) AddServer(id string, host int) (*Server, error) {
	if _, dup := sys.servers[id]; dup {
		return nil, fmt.Errorf("core: server %q already exists", id)
	}
	srv := &Server{
		ID:             id,
		Host:           host,
		Store:          store.New(sys.Schema, sys.Cfg.Cost),
		ownerSummaries: make(map[string]*summary.Summary),
		childSummaries: make(map[string]*summary.Summary),
		replicas:       make(map[string]*summary.Summary),
		ancestorLocal:  make(map[string]*summary.Summary),
	}
	const joinMsgBytes = 64
	if sys.Tree == nil {
		sys.Tree = hierarchy.New(id, hierarchy.WithMaxChildren(sys.Cfg.MaxChildren))
	} else {
		steps, err := sys.Tree.Join(id)
		if err != nil {
			return nil, err
		}
		// One request+response per consulted server.
		sys.Sim.Account(netsim.Maintenance, 2*joinMsgBytes*len(steps.Consulted))
	}
	node, _ := sys.Tree.Node(id)
	srv.node = node
	sys.servers[id] = srv
	sys.order = append(sys.order, id)
	return srv, nil
}

// Server looks up a server by ID.
func (sys *System) Server(id string) (*Server, bool) {
	s, ok := sys.servers[id]
	return s, ok
}

// Servers returns all servers in insertion order.
func (sys *System) Servers() []*Server {
	out := make([]*Server, len(sys.order))
	for i, id := range sys.order {
		out[i] = sys.servers[id]
	}
	return out
}

// NumServers returns the deployment size.
func (sys *System) NumServers() int { return len(sys.servers) }

// AttachOwner attaches a resource owner at the given server (its
// "attachment point"). Depending on the owner's policy mode, the raw
// records land in the server's store or only a summary is exported during
// aggregation.
func (sys *System) AttachOwner(serverID string, o *policy.Owner) error {
	srv, ok := sys.servers[serverID]
	if !ok {
		return fmt.Errorf("core: unknown server %q", serverID)
	}
	srv.Owners = append(srv.Owners, o)
	if o.Policy.Mode == policy.ExportRecords {
		recs, err := o.ExportRecords()
		if err != nil {
			return err
		}
		srv.Store.Add(recs...)
		// Raw record export is update traffic sized by the records.
		size := 0
		for _, r := range recs {
			size += r.SizeBytes(sys.Schema)
		}
		sys.Sim.Account(netsim.Update, size)
	}
	return nil
}

// MarkFailed simulates an unannounced crash: the server stays in every
// other server's summaries and redirect tables (stale soft state), but
// queries contacting it learn nothing and cannot proceed into its subtree.
// RepairFailed (or the next maintenance cycle) heals the hierarchy.
func (sys *System) MarkFailed(id string) error {
	srv, ok := sys.servers[id]
	if !ok {
		return fmt.Errorf("core: unknown server %q", id)
	}
	if sys.Tree.Root().ID == id {
		return fmt.Errorf("core: cannot fail the root in the staleness model (elect first)")
	}
	srv.failed = true
	return nil
}

// RepairFailed runs the maintenance protocol for every crashed server:
// orphans rejoin via their root paths, stale state is dropped, and one
// aggregation epoch restores fresh summaries. It returns the repaired IDs.
func (sys *System) RepairFailed() ([]string, error) {
	var failed []string
	for _, id := range sys.order {
		if sys.servers[id].failed {
			failed = append(failed, id)
		}
	}
	for _, id := range failed {
		if err := sys.RemoveServer(id); err != nil {
			return nil, err
		}
	}
	if len(sys.servers) > 0 {
		if err := sys.Aggregate(); err != nil {
			return nil, err
		}
	}
	return failed, nil
}

// RemoveServer handles a server departure: hierarchy repair plus dropping
// the state other servers held for it. Children rejoin per their root
// paths; summaries are re-established by the next Aggregate pass, exactly
// as soft state dictates.
func (sys *System) RemoveServer(id string) error {
	if _, ok := sys.servers[id]; !ok {
		return fmt.Errorf("core: unknown server %q", id)
	}
	if _, err := sys.Tree.Leave(id); err != nil {
		return err
	}
	delete(sys.servers, id)
	for i, oid := range sys.order {
		if oid == id {
			sys.order = append(sys.order[:i], sys.order[i+1:]...)
			break
		}
	}
	for _, srv := range sys.servers {
		delete(srv.childSummaries, id)
		delete(srv.replicas, id)
		delete(srv.ancestorLocal, id)
	}
	return nil
}

// sortedIDs returns children IDs of a node in deterministic order.
func childIDs(n *hierarchy.Node) []string {
	out := make([]string, len(n.Children))
	for i, c := range n.Children {
		out[i] = c.ID
	}
	sort.Strings(out)
	return out
}
