// Livecluster: run a real ROADS federation — actual servers with their own
// goroutine loops, gob-encoded messages over TCP on the loopback
// interface, soft-state aggregation ticks, heartbeats, and a concurrent
// redirect-following client. Then kill a server and watch the hierarchy
// heal.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"net"
	"time"

	"roads/internal/live"
	"roads/internal/policy"
	"roads/internal/query"
	"roads/internal/transport"
	"roads/internal/workload"
)

func main() {
	const n = 7
	rng := rand.New(rand.NewSource(3))
	w, err := workload.Generate(workload.Config{Nodes: n, RecordsPerNode: 50, AttrsPerDist: 2}, rng)
	if err != nil {
		log.Fatal(err)
	}

	// Grab free loopback ports.
	addrs := make([]string, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		ln.Close()
	}

	tr := transport.NewTCP()
	cl, err := live.StartCluster(tr, live.ClusterConfig{
		N:           n,
		Schema:      w.Schema,
		MaxChildren: 3,
		AddrFor:     func(i int) string { return addrs[i] },
		Tick:        100 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Stop()

	for i := 0; i < n; i++ {
		o := policy.NewOwner(fmt.Sprintf("owner%d", i), w.Schema, nil)
		o.SetRecords(w.PerNode[i])
		if err := cl.AttachOwner(i, o); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("started %d TCP servers; waiting for convergence...\n", n)
	if err := cl.WaitConverged(uint64(w.TotalRecords()), time.Minute); err != nil {
		log.Fatal(err)
	}
	root := cl.Root()
	fmt.Printf("hierarchy converged: root=%s, %d records federated\n", root.ID(), w.TotalRecords())

	client := live.NewClient(tr, "demo")
	q := query.New("demo", query.NewRange("a0", 0.2, 0.5), query.NewRange("a2", 0.1, 0.6))
	recs, stats, err := client.Resolve(cl.Servers[n-1].Addr(), q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query via %s: %d records from %d servers in %v\n",
		cl.Servers[n-1].ID(), len(recs), stats.Contacted, stats.Elapsed.Round(time.Millisecond))

	// Fail a non-root server and let the maintenance protocol heal the tree.
	var victim *live.Server
	for _, srv := range cl.Servers {
		if srv != root && srv.NumChildren() > 0 {
			victim = srv
			break
		}
	}
	if victim == nil {
		victim = cl.Servers[1]
	}
	fmt.Printf("stopping %s (children: %d) — orphans rejoin via their root paths...\n",
		victim.ID(), victim.NumChildren())
	victim.Stop()
	time.Sleep(time.Second)

	healed := 0
	for _, srv := range cl.Servers {
		if srv == victim {
			continue
		}
		if srv.IsRoot() || srv.ParentID() != "" {
			healed++
		}
	}
	fmt.Printf("hierarchy healed: %d/%d surviving servers attached\n", healed, n-1)

	recs, stats, err = client.Resolve(root.Addr(), q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("post-failure query: %d records from %d servers in %v\n",
		len(recs), stats.Contacted, stats.Elapsed.Round(time.Millisecond))
}
