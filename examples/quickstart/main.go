// Quickstart: build a small ROADS federation in-process, attach resource
// owners, aggregate summaries, and resolve a multi-dimensional range query
// from an arbitrary server — the minimal end-to-end tour of the public
// pieces (records, owners, the hierarchy, summaries, queries).
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"roads/internal/coords"
	"roads/internal/core"
	"roads/internal/netsim"
	"roads/internal/policy"
	"roads/internal/query"
	"roads/internal/record"
)

func main() {
	// 1. The federation-wide schema: every participant describes resources
	// with the same attributes (the paper assumes a common schema).
	schema := record.MustSchema([]record.Attribute{
		{Name: "cpu", Kind: record.Numeric},      // normalized load headroom
		{Name: "mem", Kind: record.Numeric},      // normalized free memory
		{Name: "disk", Kind: record.Numeric},     // normalized free disk
		{Name: "os", Kind: record.Categorical},   // operating system
		{Name: "arch", Kind: record.Categorical}, // CPU architecture
	})

	// 2. A simulated wide-area network and a ROADS deployment of 12
	// servers (degree 3, so we get a real multi-level hierarchy).
	rng := rand.New(rand.NewSource(7))
	space := coords.MustNewSpace(12, coords.DefaultConfig(), rng)
	sim := netsim.New(space)

	cfg := core.DefaultConfig()
	cfg.MaxChildren = 3
	cfg.Summary.Buckets = 100
	sys, err := core.NewSystem(schema, cfg, sim)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Twelve organizations, each hosting a server and sharing a handful
	// of machines. Owners export only summaries — detailed records never
	// leave them.
	oses := []string{"linux", "bsd", "solaris"}
	archs := []string{"x86", "sparc", "ppc"}
	for i := 0; i < 12; i++ {
		id := fmt.Sprintf("org%02d", i)
		if _, err := sys.AddServer(id, i); err != nil {
			log.Fatal(err)
		}
		owner := policy.NewOwner(id+"-resources", schema, nil)
		var recs []*record.Record
		for m := 0; m < 20; m++ {
			r := record.New(schema, fmt.Sprintf("%s-machine%02d", id, m), id)
			r.SetNum(0, rng.Float64())
			r.SetNum(1, rng.Float64())
			r.SetNum(2, rng.Float64())
			r.SetStr(3, oses[rng.Intn(len(oses))])
			r.SetStr(4, archs[rng.Intn(len(archs))])
			recs = append(recs, r)
		}
		owner.SetRecords(recs)
		if err := sys.AttachOwner(id, owner); err != nil {
			log.Fatal(err)
		}
	}

	// 4. One soft-state refresh: owners export summaries, branches
	// aggregate bottom-up, and the replication overlay spreads them.
	if err := sys.Aggregate(); err != nil {
		log.Fatal(err)
	}
	root, _ := sys.Server(sys.Tree.Root().ID)
	fmt.Printf("hierarchy: %d servers, %d levels; root %s sees %d records\n",
		sys.NumServers(), sys.Tree.Depth(), root.ID, root.BranchSummary().Records)

	// 5. A multi-dimensional range query, started at an arbitrary server —
	// the overlay means no root round trip.
	q := query.New("find-worker",
		query.NewAbove("cpu", 0.7),
		query.NewAbove("mem", 0.5),
		query.NewEq("os", "linux"),
	)
	res, err := sys.ResolveAndRetrieve(q, "org07")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query %q from org07:\n", q)
	fmt.Printf("  contacted %d of %d servers, forwarding latency %v, %d bytes\n",
		len(res.Contacted), sys.NumServers(), res.Latency.Round(time.Millisecond), res.QueryBytes)
	fmt.Printf("  %d matching machines from %d owners:\n", len(res.Records), len(res.Endpoints))
	for i, r := range res.Records {
		if i == 5 {
			fmt.Printf("    ... and %d more\n", len(res.Records)-5)
			break
		}
		fmt.Printf("    %s (cpu=%.2f mem=%.2f os=%s)\n", r.ID, r.Num(0), r.Num(1), r.Str(3))
	}
}
