// Federation: voluntary sharing across administrative boundaries. Three
// organizations share compute resources but retain final control: one
// hosts its own server and exports raw records to it, one exports only
// summaries to a third-party server, and each applies per-requester views
// (a business partner sees more than a stranger) — the scenario of the
// paper's Fig. 1 and §II.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"roads/internal/coords"
	"roads/internal/core"
	"roads/internal/netsim"
	"roads/internal/policy"
	"roads/internal/query"
	"roads/internal/record"
)

func main() {
	schema := record.MustSchema([]record.Attribute{
		{Name: "cores", Kind: record.Numeric},
		{Name: "gpu", Kind: record.Numeric},
		{Name: "tier", Kind: record.Categorical}, // public | partner | internal
		{Name: "site", Kind: record.Categorical},
	})

	rng := rand.New(rand.NewSource(21))
	space := coords.MustNewSpace(4, coords.DefaultConfig(), rng)
	sim := netsim.New(space)
	cfg := core.DefaultConfig()
	cfg.Summary.Buckets = 64
	sys, err := core.NewSystem(schema, cfg, sim)
	if err != nil {
		log.Fatal(err)
	}

	// Server providers: a neutral exchange runs the root; three orgs run
	// their own servers under it (Fig. 1's structure).
	for i, id := range []string{"exchange", "alpha-srv", "beta-srv", "gamma-srv"} {
		if _, err := sys.AddServer(id, i); err != nil {
			log.Fatal(err)
		}
	}

	mkRecords := func(org string, n int, tiers []string) []*record.Record {
		recs := make([]*record.Record, n)
		for i := range recs {
			r := record.New(schema, fmt.Sprintf("%s-node%02d", org, i), org)
			r.SetNum(0, rng.Float64())
			r.SetNum(1, rng.Float64())
			r.SetStr(2, tiers[rng.Intn(len(tiers))])
			r.SetStr(3, org)
			recs[i] = r
		}
		return recs
	}

	// Org alpha trusts its own server: raw records live on alpha-srv.
	alpha := policy.NewOwner("alpha", schema, policy.NewPolicy(policy.ExportRecords))
	alpha.SetRecords(mkRecords("alpha", 30, []string{"public", "partner", "internal"}))
	if err := sys.AttachOwner("alpha-srv", alpha); err != nil {
		log.Fatal(err)
	}

	// Org beta attaches to the exchange's server but exports summaries
	// only — its records never leave beta, and its policy decides per
	// requester what a query gets back.
	betaPolicy := policy.NewPolicy(policy.ExportSummary)
	betaPolicy.DefaultView = policy.View{
		Name:   "public-only",
		Filter: func(r *record.Record) bool { return r.Str(2) == "public" },
	}
	betaPolicy.SetView("alpha", policy.View{ // alpha is beta's business partner
		Name:   "partner",
		Filter: func(r *record.Record) bool { return r.Str(2) != "internal" },
	})
	beta := policy.NewOwner("beta", schema, betaPolicy)
	beta.SetRecords(mkRecords("beta", 30, []string{"public", "partner", "internal"}))
	if err := sys.AttachOwner("exchange", beta); err != nil {
		log.Fatal(err)
	}

	// Org gamma shares everything it has, from its own server.
	gamma := policy.NewOwner("gamma", schema, nil)
	gamma.SetRecords(mkRecords("gamma", 30, []string{"public"}))
	if err := sys.AttachOwner("gamma-srv", gamma); err != nil {
		log.Fatal(err)
	}

	if err := sys.Aggregate(); err != nil {
		log.Fatal(err)
	}

	ask := func(requester string) {
		q := query.New("gpu-hunt", query.NewAbove("gpu", 0.5))
		q.Requester = requester
		res, err := sys.ResolveAndRetrieve(q, "alpha-srv")
		if err != nil {
			log.Fatal(err)
		}
		perOrg := map[string]int{}
		for _, r := range res.Records {
			perOrg[r.Owner]++
		}
		fmt.Printf("requester %-8s -> %2d records (by org: %v)\n", requester, len(res.Records), perOrg)
	}

	fmt.Println("same query, different requesters — owners retain final control:")
	ask("alpha")    // beta's partner: sees beta's public+partner tiers
	ask("stranger") // only public tiers from beta; alpha/gamma share all
}
