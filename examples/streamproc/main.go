// Streamproc: the paper's motivating scenario — collaborating stream
// processing sites (System S style, ref [1]) discovering data sources
// across organizations. Each site publishes sensor/video feed descriptors;
// a planning client searches for feeds matching a processing job's needs
// using multi-dimensional queries over rate, resolution and encoding.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"roads/internal/coords"
	"roads/internal/core"
	"roads/internal/netsim"
	"roads/internal/policy"
	"roads/internal/query"
	"roads/internal/record"
)

func main() {
	// The paper's running example record:
	//   {type=camera, encoding=MPEG2, rate=100Kbps, resolution=640x480}
	// Rates and resolutions are normalized to [0,1] (1.0 = 10 Mbps / 4K).
	schema := record.MustSchema([]record.Attribute{
		{Name: "rate", Kind: record.Numeric},
		{Name: "resolution", Kind: record.Numeric},
		{Name: "freshness", Kind: record.Numeric}, // how recent the feed is
		{Name: "type", Kind: record.Categorical},
		{Name: "encoding", Kind: record.Categorical},
	})

	rng := rand.New(rand.NewSource(42))
	const sites = 9
	space := coords.MustNewSpace(sites, coords.DefaultConfig(), rng)
	sim := netsim.New(space)
	cfg := core.DefaultConfig()
	cfg.MaxChildren = 3
	cfg.Summary.Buckets = 128
	sys, err := core.NewSystem(schema, cfg, sim)
	if err != nil {
		log.Fatal(err)
	}

	types := []string{"camera", "microphone", "traffic-sensor"}
	encodings := map[string][]string{
		"camera":         {"MPEG2", "MPEG4", "H264"},
		"microphone":     {"PCM", "MP3"},
		"traffic-sensor": {"CSV", "XML"},
	}
	for i := 0; i < sites; i++ {
		site := fmt.Sprintf("site%d", i)
		if _, err := sys.AddServer(site, i); err != nil {
			log.Fatal(err)
		}
		owner := policy.NewOwner(site+"-feeds", schema, nil)
		var feeds []*record.Record
		for f := 0; f < 40; f++ {
			typ := types[rng.Intn(len(types))]
			encs := encodings[typ]
			r := record.New(schema, fmt.Sprintf("%s-feed%02d", site, f), site)
			r.SetNum(0, rng.Float64())
			r.SetNum(1, rng.Float64())
			r.SetNum(2, rng.Float64())
			r.SetStr(3, typ)
			r.SetStr(4, encs[rng.Intn(len(encs))])
			feeds = append(feeds, r)
		}
		owner.SetRecords(feeds)
		if err := sys.AttachOwner(site, owner); err != nil {
			log.Fatal(err)
		}
	}
	if err := sys.Aggregate(); err != nil {
		log.Fatal(err)
	}

	// A planning job needs high-rate MPEG2 camera feeds — the paper's
	// example query: type=camera AND rate>150Kbps AND encoding=MPEG2
	// (150 Kbps normalizes to 0.015; we ask for substantially more to
	// show dimension-based pruning).
	jobs := []*query.Query{
		query.New("ingest-hd-video",
			query.NewEq("type", "camera"),
			query.NewAbove("rate", 0.6),
			query.NewEq("encoding", "MPEG2"),
		),
		query.New("fresh-audio",
			query.NewEq("type", "microphone"),
			query.NewAbove("freshness", 0.8),
		),
		query.New("low-rate-sensors",
			query.NewEq("type", "traffic-sensor"),
			query.NewBelow("rate", 0.2),
			query.NewAbove("freshness", 0.5),
		),
	}
	for _, q := range jobs {
		start := fmt.Sprintf("site%d", rng.Intn(sites))
		res, err := sys.ResolveAndRetrieve(q, start)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("job %-18s from %s: %2d feeds, %d/%d sites contacted, latency %v\n",
			q.ID, start, len(res.Records), len(res.Contacted), sites,
			res.Latency.Round(time.Millisecond))
		for i, r := range res.Records {
			if i == 3 {
				fmt.Printf("    ...\n")
				break
			}
			fmt.Printf("    %s rate=%.2f enc=%s\n", r.ID, r.Num(0), r.Str(4))
		}
	}
}
