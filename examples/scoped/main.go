// Scoped: the paper's §III-C search-scope control through the public
// facade. A client at a leaf widens its search level by level — own
// organization first, then the regional branch, then the whole federation
// — trading coverage against latency and traffic, and a new owner picks
// its attachment point by capacity.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"roads"
)

func main() {
	schema, err := roads.NewSchema([]roads.Attribute{
		{Name: "cores", Kind: roads.Numeric},
		{Name: "region", Kind: roads.Categorical},
	})
	if err != nil {
		log.Fatal(err)
	}

	const n = 21 // degree 4: root + 4 regions + 16 sites -> 3 levels
	cfg := roads.DefaultSystemConfig()
	cfg.MaxChildren = 4
	cfg.Summary.Buckets = 64
	sys, err := roads.NewSimulatedSystem(schema, cfg, n, 5)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	regions := []string{"eu", "us", "apac", "latam"}
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("site%02d", i)
		if _, err := sys.AddServer(id, i); err != nil {
			log.Fatal(err)
		}
		owner := roads.NewOwner(id+"-owner", schema, nil)
		var recs []*roads.Record
		for m := 0; m < 15; m++ {
			r := roads.NewRecord(schema, fmt.Sprintf("%s-m%02d", id, m), id)
			r.SetNum(0, rng.Float64())
			r.SetStr(1, regions[i%len(regions)])
			recs = append(recs, r)
		}
		owner.SetRecords(recs)
		if err := sys.AttachOwner(id, owner); err != nil {
			log.Fatal(err)
		}
	}
	if err := sys.Aggregate(); err != nil {
		log.Fatal(err)
	}

	// A leaf deep in the hierarchy widens its search scope step by step.
	var leaf string
	for _, srv := range sys.Servers() {
		if srv.Level() >= 2 {
			leaf = srv.ID
			break
		}
	}
	q := roads.NewQuery("find-cores", roads.Above("cores", 0.5))
	fmt.Printf("widening search from %s (deeper scope = wider coverage):\n", leaf)
	for scope := 0; ; scope++ {
		res, err := sys.ResolveScoped(q.Clone(), leaf, scope)
		if err != nil {
			log.Fatal(err)
		}
		if err := sys.Retrieve(q.Clone(), res, 0); err != nil {
			log.Fatal(err)
		}
		branch, _ := sys.SubtreeServers(leaf, scope)
		fmt.Printf("  scope %d: branch of %2d servers -> %3d records, %2d contacted, latency %v, %d B\n",
			scope, len(branch), len(res.Records), len(res.Contacted),
			res.Latency.Round(time.Millisecond), res.QueryBytes)
		if len(branch) == sys.NumServers() {
			break
		}
	}

	// A new owner joins the federation: attachment-point selection walks
	// the same least-depth descent as server joins, balancing load.
	id, err := sys.SelectAttachmentPoint(2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nnew owner's attachment point (capacity 2 owners/server): %s\n", id)
	newcomer := roads.NewOwner("newcomer", schema, nil)
	r := roads.NewRecord(schema, "newcomer-m0", "newcomer")
	r.SetNum(0, 0.99)
	r.SetStr(1, "eu")
	newcomer.SetRecords([]*roads.Record{r})
	if err := sys.AttachOwner(id, newcomer); err != nil {
		log.Fatal(err)
	}
	if err := sys.Aggregate(); err != nil {
		log.Fatal(err)
	}
	res, err := sys.ResolveAndRetrieve(roads.NewQuery("q2", roads.Above("cores", 0.98)), leaf)
	if err != nil {
		log.Fatal(err)
	}
	found := false
	for _, rec := range res.Records {
		if rec.Owner == "newcomer" {
			found = true
		}
	}
	fmt.Printf("newcomer's record discoverable after one refresh epoch: %v\n", found)
}
