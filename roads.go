package roads

import (
	"math/rand"
	"time"

	"roads/internal/coords"
	"roads/internal/core"
	"roads/internal/live"
	"roads/internal/netsim"
	"roads/internal/policy"
	"roads/internal/query"
	"roads/internal/record"
	"roads/internal/store"
	"roads/internal/summary"
	"roads/internal/transport"
)

// This file is the public facade: the types and constructors a downstream
// user needs, re-exported from the internal packages so one import serves
// the common cases. The internal packages remain the implementation — the
// facade only names their stable surface.

// --- Records and schema ---

// Schema is the federation-wide attribute schema.
type Schema = record.Schema

// Attribute describes one schema dimension.
type Attribute = record.Attribute

// Record is one resource description.
type Record = record.Record

// Attribute kinds.
const (
	Numeric     = record.Numeric
	Categorical = record.Categorical
)

// NewSchema builds a schema from attributes.
func NewSchema(attrs []Attribute) (*Schema, error) { return record.NewSchema(attrs) }

// NewRecord allocates a record conforming to the schema.
func NewRecord(s *Schema, id, owner string) *Record { return record.New(s, id, owner) }

// --- Queries ---

// Query is a multi-dimensional range query.
type Query = query.Query

// Predicate is one query dimension.
type Predicate = query.Predicate

// NewQuery builds a query from predicates.
func NewQuery(id string, preds ...Predicate) *Query { return query.New(id, preds...) }

// Range builds a numeric range predicate attr in [lo,hi].
func Range(attr string, lo, hi float64) Predicate { return query.NewRange(attr, lo, hi) }

// Above builds attr > lo.
func Above(attr string, lo float64) Predicate { return query.NewAbove(attr, lo) }

// Below builds attr < hi.
func Below(attr string, hi float64) Predicate { return query.NewBelow(attr, hi) }

// Eq builds a categorical equality predicate.
func Eq(attr, v string) Predicate { return query.NewEq(attr, v) }

// ParseQuery parses ";"-separated textual predicates
// ("rate=0.2:0.4; encoding=MPEG2; cpu>0.5").
func ParseQuery(id, s string) (*Query, error) { return query.ParseQuery(id, s) }

// --- Voluntary sharing ---

// Owner is a resource owner: records plus a sharing policy.
type Owner = policy.Owner

// Policy is an owner's sharing policy (export mode + per-requester views).
type Policy = policy.Policy

// View filters what a requester class sees.
type View = policy.View

// Export modes.
const (
	// ExportSummary shares only condensed summaries; detailed records stay
	// with the owner.
	ExportSummary = policy.ExportSummary
	// ExportRecords pushes raw records to a trusted attachment point.
	ExportRecords = policy.ExportRecords
)

// NewOwner creates an owner (nil policy = summary-only export, share-all
// view).
func NewOwner(id string, schema *Schema, pol *Policy) *Owner {
	return policy.NewOwner(id, schema, pol)
}

// NewPolicy creates a policy with the given export mode.
func NewPolicy(mode policy.ExportMode) *Policy { return policy.NewPolicy(mode) }

// --- Summaries ---

// Summary is the condensed representation owners export and servers
// aggregate.
type Summary = summary.Summary

// SummaryConfig controls summary construction.
type SummaryConfig = summary.Config

// DefaultSummaryConfig returns the paper's defaults (1000-bucket
// histograms over [0,1]).
func DefaultSummaryConfig() SummaryConfig { return summary.DefaultConfig() }

// --- Simulated deployments (internal/core) ---

// System is a simulated ROADS deployment with exact byte and latency
// accounting; it regenerates the paper's figures.
type System = core.System

// SystemConfig configures a simulated deployment.
type SystemConfig = core.Config

// SearchResult reports one resolved query.
type SearchResult = core.SearchResult

// DefaultSystemConfig returns the paper's simulation defaults.
func DefaultSystemConfig() SystemConfig { return core.DefaultConfig() }

// NewSimulatedSystem creates a deployment over n simulated wide-area hosts
// (synthesized 5-D delay space seeded from seed). Add servers with
// System.AddServer(id, hostIndex) for hostIndex < n.
func NewSimulatedSystem(schema *Schema, cfg SystemConfig, n int, seed int64) (*System, error) {
	rng := rand.New(rand.NewSource(seed))
	space, err := coords.NewSpace(n, coords.DefaultConfig(), rng)
	if err != nil {
		return nil, err
	}
	return core.NewSystem(schema, cfg, netsim.New(space))
}

// --- Live deployments (internal/live) ---

// Server is one live ROADS server (goroutine loops, wire messages).
type Server = live.Server

// ServerConfig configures a live server.
type ServerConfig = live.Config

// Cluster is a harness that starts and joins n live servers.
type Cluster = live.Cluster

// ClusterConfig configures StartCluster.
type ClusterConfig = live.ClusterConfig

// Client resolves queries against a live deployment, following redirects
// concurrently.
type Client = live.Client

// Transport moves wire messages between live servers.
type Transport = transport.Transport

// NewServer creates a live server (call Start, then Join a seed).
func NewServer(cfg ServerConfig, tr Transport) (*Server, error) { return live.NewServer(cfg, tr) }

// DefaultServerConfig returns test-friendly live-server defaults.
func DefaultServerConfig(id, addr string, schema *Schema) ServerConfig {
	return live.DefaultConfig(id, addr, schema)
}

// StartCluster launches n live servers on the transport and joins them
// into one hierarchy.
func StartCluster(tr Transport, cfg ClusterConfig) (*Cluster, error) {
	return live.StartCluster(tr, cfg)
}

// NewClient creates a query client presenting the given requester identity
// to owners' sharing policies.
func NewClient(tr Transport, requester string) *Client { return live.NewClient(tr, requester) }

// NewTCPTransport returns a pooled, multiplexed gob-over-TCP transport
// for multi-process federations.
func NewTCPTransport() Transport { return transport.NewTCP() }

// NewInProcessTransport returns an in-process transport for tests, demos
// and benchmarks (optionally with injected latency; see transport.Chan).
func NewInProcessTransport() *transport.Chan { return transport.NewChan() }

// TransportStats is a snapshot of a transport's operational counters
// (dials vs pooled reuses, in-flight calls, bytes, latency histogram).
type TransportStats = transport.Stats

// StatsOf returns the transport's counters when it exposes them (both
// built-in transports do).
func StatsOf(tr Transport) (TransportStats, bool) {
	if s, ok := tr.(transport.Statser); ok {
		return s.Stats(), true
	}
	return TransportStats{}, false
}

// --- Stores ---

// Store is an indexed local record store with a backend cost model.
type Store = store.Store

// CostModel charges virtual time for backend work.
type CostModel = store.CostModel

// NewStore creates an indexed store.
func NewStore(schema *Schema, cost CostModel) *Store { return store.New(schema, cost) }

// ScopeAll searches the entire hierarchy in System.ResolveScoped.
const ScopeAll = core.ScopeAll

// DefaultTick is a sensible live aggregation/heartbeat period for demos
// (production deployments would use minutes, per the paper's soft-state
// design).
const DefaultTick = 100 * time.Millisecond
